//! The shared reproduction pipeline: build benchmarks, train every
//! detector, evaluate with timing — the machinery behind the Table 1 and
//! Figure 10 binaries.

use std::path::Path;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd_baselines::{
    average_row, faster_rcnn_config, ssd_config, CaseResult, LayoutClip, Tcad18Config,
    Tcad18Detector,
};
use rhsd_core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd_data::augment::{flip_region, Flip};
use rhsd_data::{sample_regions, train_regions, Benchmark, RegionConfig, RegionSample};
use rhsd_layout::synth::CaseId;

/// Effort level of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Minutes-scale: all three cases, full demo training.
    Full,
    /// Seconds-to-a-minute: fewer epochs, no augmentation.
    Quick,
}

/// Builds the three evaluated benchmark cases (demo scale).
pub fn build_benchmarks() -> Vec<Benchmark> {
    CaseId::EVALUATED
        .iter()
        .map(|&id| Benchmark::demo(id))
        .collect()
}

/// Merges the training halves of all cases into one region set (the paper:
/// "three training layouts are merged together to train one model"),
/// optionally with flip augmentation.
pub fn merged_train_regions(
    benches: &[Benchmark],
    region: &RegionConfig,
    augment: bool,
) -> Vec<RegionSample> {
    let mut samples = Vec::new();
    for (i, b) in benches.iter().enumerate() {
        samples.extend(train_regions(b, region));
        if augment {
            // randomly-shifted crops: hotspots appear at varied positions
            samples.extend(sample_regions(
                b,
                &b.train_extent.clone(),
                region,
                24,
                900 + i as u64,
            ));
        }
    }
    if augment {
        let flipped: Vec<RegionSample> = samples
            .iter()
            .flat_map(|s| {
                [
                    flip_region(s, Flip::Horizontal),
                    flip_region(s, Flip::Vertical),
                ]
            })
            .collect();
        samples.extend(flipped);
    }
    samples
}

/// Training schedule for an effort level.
pub fn train_config(effort: Effort) -> TrainConfig {
    let mut tc = TrainConfig::demo();
    match effort {
        Effort::Full => {
            tc.epochs = 10;
        }
        Effort::Quick => {
            tc.epochs = 3;
        }
    }
    tc
}

/// Trains one region-based network (ours or an ablation/generic config).
pub fn train_region_network(
    config: RhsdConfig,
    samples: &[RegionSample],
    effort: Effort,
    seed: u64,
) -> RegionDetector {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = RhsdNetwork::new(config, &mut rng);
    let tc = train_config(effort);
    rhsd_core::train(&mut net, samples, &tc);
    RegionDetector::new(net, RegionConfig::demo())
}

/// The demo-scale "ours" configuration (full techniques).
pub fn ours_config() -> RhsdConfig {
    RhsdConfig::demo()
}

/// Evaluates a region detector on a case's test half, timing the scan.
pub fn evaluate_region_detector(det: &mut RegionDetector, bench: &Benchmark) -> CaseResult {
    let timer = rhsd_obs::Stopwatch::start();
    let result = det.scan_test_half(bench);
    let secs = timer.stop_into("eval.region_scan");
    CaseResult::new(bench.id.name(), &result.evaluation, secs)
}

/// Trains the TCAD'18-style clip detector on the merged training halves.
pub fn train_tcad18(benches: &[Benchmark], effort: Effort) -> Tcad18Detector {
    let mut cfg = Tcad18Config::demo();
    if effort == Effort::Quick {
        cfg.epochs = 2;
        cfg.biased_epochs = 1;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut det = Tcad18Detector::new(cfg, &mut rng);
    // Merge clips from all training halves.
    let mut clips = Vec::new();
    for b in benches {
        let set = rhsd_data::clips::build_clip_set(
            b,
            &b.train_extent.clone(),
            det.config().clip_px,
            3, // jittered positives: hotspot anywhere within the core
            3,
            det.config().seed,
        );
        let px = det.config().raster_px();
        clips.extend(set.iter().map(|c| {
            (
                rhsd_data::clips::rasterize_window(b, &c.window, px),
                c.is_hotspot,
            )
        }));
    }
    det.train(&clips);
    det
}

/// Evaluates the clip detector on a case's test half, timing the scan.
pub fn evaluate_tcad18(
    det: &mut Tcad18Detector,
    bench: &Benchmark,
) -> (CaseResult, Vec<LayoutClip>) {
    let timer = rhsd_obs::Stopwatch::start();
    let (marked, eval) = det.scan(bench, &bench.test_extent.clone());
    let secs = timer.stop_into("eval.tcad18_scan");
    (CaseResult::new(bench.id.name(), &eval, secs), marked)
}

/// One detector's full Table 1 block: per-case rows plus the average.
#[derive(Debug, Clone)]
pub struct DetectorReport {
    /// Detector label ("Ours", "TCAD'18", …).
    pub name: String,
    /// Per-case rows followed by the average row.
    pub rows: Vec<CaseResult>,
}

impl DetectorReport {
    /// Builds a report, appending the average row.
    pub fn new(name: impl Into<String>, mut rows: Vec<CaseResult>) -> Self {
        let avg = average_row(&rows);
        rows.push(avg);
        DetectorReport {
            name: name.into(),
            rows,
        }
    }

    /// The average row ([`DetectorReport::new`] always appends one; an
    /// empty report — possible through the public field — averages to the
    /// all-zero row).
    pub fn average(&self) -> CaseResult {
        match self.rows.last() {
            Some(r) => r.clone(),
            None => average_row(&self.rows),
        }
    }

    /// Per-case rows, excluding the trailing average row.
    pub fn case_rows(&self) -> &[CaseResult] {
        &self.rows[..self.rows.len().saturating_sub(1)]
    }
}

/// Serialises detector reports as the machine-readable benchmark record
/// tracked across revisions (`BENCH_table1.json`): per detector, the
/// per-case accuracy / false-alarm / runtime rows plus the average.
pub fn bench_json(
    source: &str,
    quick: bool,
    reports: &[DetectorReport],
) -> std::io::Result<String> {
    let detectors: Vec<serde_json::Value> = reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "name": r.name,
                "cases": r.case_rows(),
                "average": r.average(),
            })
        })
        .collect();
    let doc = serde_json::json!({
        "schema": "rhsd-bench-table/1",
        "source": source,
        "quick": quick,
        "detectors": detectors,
    });
    serde_json::to_string_pretty(&doc).map_err(std::io::Error::other)
}

/// Writes [`bench_json`] to `path`.
pub fn write_bench_json(
    path: impl AsRef<Path>,
    source: &str,
    quick: bool,
    reports: &[DetectorReport],
) -> std::io::Result<()> {
    std::fs::write(path, bench_json(source, quick, reports)?)
}

/// Runs the full Table 1 comparison: TCAD'18, Faster R-CNN, SSD, Ours.
pub fn run_table1(effort: Effort) -> Vec<DetectorReport> {
    let benches = build_benchmarks();
    let region = RegionConfig::demo();
    let augment = effort == Effort::Full;
    let samples = merged_train_regions(&benches, &region, augment);

    let mut reports = Vec::new();

    // TCAD'18 clip-based baseline.
    let mut tcad = train_tcad18(&benches, effort);
    let rows = benches
        .iter()
        .map(|b| evaluate_tcad18(&mut tcad, b).0)
        .collect();
    reports.push(DetectorReport::new("TCAD'18", rows));

    // Faster R-CNN-style.
    let mut frcnn = train_region_network(faster_rcnn_config(&region), &samples, effort, 101);
    let rows = benches
        .iter()
        .map(|b| evaluate_region_detector(&mut frcnn, b))
        .collect();
    reports.push(DetectorReport::new("Faster R-CNN", rows));

    // SSD-style.
    let mut ssd = train_region_network(ssd_config(&region), &samples, effort, 102);
    let rows = benches
        .iter()
        .map(|b| evaluate_region_detector(&mut ssd, b))
        .collect();
    reports.push(DetectorReport::new("SSD", rows));

    // Ours.
    let mut ours = train_region_network(ours_config(), &samples, effort, 103);
    let rows = benches
        .iter()
        .map(|b| evaluate_region_detector(&mut ours, b))
        .collect();
    reports.push(DetectorReport::new("Ours", rows));

    reports
}

/// An in-place edit of an [`RhsdConfig`] naming one ablation variant.
type ConfigTweak = fn(&mut RhsdConfig);

/// Runs the Figure 10 ablation: w/o ED, w/o L2, w/o Refine, Full.
pub fn run_fig10(effort: Effort) -> Vec<DetectorReport> {
    let benches = build_benchmarks();
    let region = RegionConfig::demo();
    let augment = effort == Effort::Full;
    let samples = merged_train_regions(&benches, &region, augment);

    let variants: [(&str, ConfigTweak); 4] = [
        ("w/o. ED", |c| c.use_encoder_decoder = false),
        ("w/o. L2", |c| c.use_l2 = false),
        ("w/o. Refine", |c| c.use_refinement = false),
        ("Full", |_| {}),
    ];

    variants
        .iter()
        .map(|(name, tweak)| {
            let mut cfg = ours_config();
            tweak(&mut cfg);
            let mut det = train_region_network(cfg, &samples, effort, 103);
            let rows = benches
                .iter()
                .map(|b| evaluate_region_detector(&mut det, b))
                .collect();
            DetectorReport::new(*name, rows)
        })
        .collect()
}
