//! The shared reproduction pipeline: build benchmarks, train every
//! detector, evaluate with timing — the machinery behind the Table 1 and
//! Figure 10 binaries.

use std::path::Path;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd_baselines::{
    average_row, faster_rcnn_config, ssd_config, CaseResult, LayoutClip, Tcad18Config,
    Tcad18Detector,
};
use rhsd_core::{
    Precision, RegionDetector, RhsdConfig, RhsdNetwork, StemFeatureCache, TrainConfig,
    DEFAULT_STEM_CACHE_CAP,
};
use rhsd_data::augment::{flip_region, Flip};
use rhsd_data::{
    sample_regions, train_regions, Benchmark, RegionConfig, RegionSample, RegionTileCache,
    DEFAULT_TILE_CACHE_CAP,
};
use rhsd_layout::synth::CaseId;

/// Primary RNG seed of the "Ours" detector — also the seed recorded in
/// run-ledger manifests and bench records of the Table-1/Figure-10 runs.
pub const OURS_SEED: u64 = 103;

/// Effort level of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Minutes-scale: all three cases, full demo training.
    Full,
    /// Seconds-to-a-minute: fewer epochs, no augmentation.
    Quick,
}

/// Builds the three evaluated benchmark cases (demo scale).
pub fn build_benchmarks() -> Vec<Benchmark> {
    CaseId::EVALUATED
        .iter()
        .map(|&id| Benchmark::demo(id))
        .collect()
}

/// Merges the training halves of all cases into one region set (the paper:
/// "three training layouts are merged together to train one model"),
/// optionally with flip augmentation.
pub fn merged_train_regions(
    benches: &[Benchmark],
    region: &RegionConfig,
    augment: bool,
) -> Vec<RegionSample> {
    let mut samples = Vec::new();
    for (i, b) in benches.iter().enumerate() {
        samples.extend(train_regions(b, region));
        if augment {
            // randomly-shifted crops: hotspots appear at varied positions
            samples.extend(sample_regions(
                b,
                &b.train_extent.clone(),
                region,
                24,
                900 + i as u64,
            ));
        }
    }
    if augment {
        let flipped: Vec<RegionSample> = samples
            .iter()
            .flat_map(|s| {
                [
                    flip_region(s, Flip::Horizontal),
                    flip_region(s, Flip::Vertical),
                ]
            })
            .collect();
        samples.extend(flipped);
    }
    samples
}

/// Training schedule for an effort level.
pub fn train_config(effort: Effort) -> TrainConfig {
    let mut tc = TrainConfig::demo();
    match effort {
        Effort::Full => {
            tc.epochs = 10;
        }
        Effort::Quick => {
            // Quick must report non-zero accuracy on every case: an
            // all-zero accuracy row blinds the bench-diff accuracy gate
            // (any regression still compares equal to a floor of zero).
            // The refinement head spends its first ~150 optimiser steps
            // fitting the class prior before it starts discriminating,
            // and the breakout is driven by the *step* count, not the
            // number of samples seen — so quick halves the batch to
            // double the steps per pass instead of paying for more
            // epochs (54 samples → 27 steps/epoch; 14 epochs ≈ 380
            // steps, comfortably past the plateau).
            tc.epochs = 14;
            tc.batch_size = 2;
        }
    }
    tc
}

/// Training-dynamics summary of one detector's training run, carried
/// into the bench record's per-detector `training` block (schema `/6`).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSummary {
    /// Epochs actually trained (sentinel aborts truncate this).
    pub epochs: u64,
    /// Final-epoch mean total loss.
    pub final_loss: f64,
    /// Final-epoch mean pre-clip global gradient norm.
    pub final_grad_norm: f64,
    /// Final-epoch predicted-label histogram entropy (nats).
    pub final_label_entropy: f64,
    /// Final-epoch mean per-RoI prediction entropy (nats).
    pub final_pred_entropy: f64,
    /// Reason tags of every sentinel trip observed (empty = clean run).
    pub sentinel_trips: Vec<String>,
}

impl TrainingSummary {
    /// Summarises a training history plus its sentinel trips; `None`
    /// for an empty history (no epochs ran).
    pub fn from_history(
        history: &[rhsd_core::EpochStats],
        trips: &[rhsd_core::TripReason],
    ) -> Option<Self> {
        let last = history.last()?;
        Some(TrainingSummary {
            epochs: history.len() as u64,
            final_loss: f64::from(last.mean_loss),
            final_grad_norm: f64::from(last.mean_grad_norm),
            final_label_entropy: f64::from(last.label_entropy()),
            final_pred_entropy: f64::from(last.pred_entropy),
            sentinel_trips: trips.iter().map(|t| t.tag().to_owned()).collect(),
        })
    }
}

/// Trains one region-based network (ours or an ablation/generic config),
/// returning the detector plus the training-dynamics summary for the
/// bench record (`None` when no epochs ran).
pub fn train_region_network(
    config: RhsdConfig,
    samples: &[RegionSample],
    effort: Effort,
    seed: u64,
) -> (RegionDetector, Option<TrainingSummary>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = RhsdNetwork::new(config, &mut rng);
    let tc = train_config(effort);
    // The default Warn policy never aborts, but stay typed about it.
    let (history, trips) = match rhsd_core::train_checked(&mut net, samples, &tc) {
        Ok(report) => (report.history, report.trips),
        Err(abort) => {
            let reason = abort.reason.clone();
            (abort.history, vec![reason])
        }
    };
    let summary = TrainingSummary::from_history(&history, &trips);
    (RegionDetector::new(net, RegionConfig::demo()), summary)
}

/// The demo-scale "ours" configuration (full techniques).
pub fn ours_config() -> RhsdConfig {
    RhsdConfig::demo()
}

/// Evaluates a region detector on a case's test half, timing the scan.
pub fn evaluate_region_detector(det: &mut RegionDetector, bench: &Benchmark) -> CaseResult {
    let timer = rhsd_obs::Stopwatch::start();
    let result = det.scan_test_half(bench);
    let secs = timer.stop_into("eval.region_scan");
    CaseResult::new(bench.id.name(), &result.evaluation, secs)
}

/// [`evaluate_region_detector`] through the incremental-scan caches:
/// every detector evaluated on the same case shares `tiles` (the test
/// half is rasterised once per case instead of once per detector), and
/// repeated rasters replay their stem activations from `stems`. The
/// reported rows are bit-identical to the uncached evaluation.
pub fn evaluate_region_detector_cached(
    det: &mut RegionDetector,
    bench: &Benchmark,
    tiles: &RegionTileCache,
    stems: &StemFeatureCache,
) -> CaseResult {
    let timer = rhsd_obs::Stopwatch::start();
    let result = det.scan_test_half_cached(bench, tiles, Some(stems));
    let secs = timer.stop_into("eval.region_scan");
    CaseResult::new(bench.id.name(), &result.evaluation, secs)
}

/// Trains the TCAD'18-style clip detector on the merged training halves.
pub fn train_tcad18(benches: &[Benchmark], effort: Effort) -> Tcad18Detector {
    let mut cfg = Tcad18Config::demo();
    if effort == Effort::Quick {
        // As with `train_config`, quick must stay above the accuracy
        // floor — see the 0%-row warning in `xtask bench-diff`.
        cfg.epochs = 4;
        cfg.biased_epochs = 2;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut det = Tcad18Detector::new(cfg, &mut rng);
    // Merge clips from all training halves.
    let mut clips = Vec::new();
    for b in benches {
        let set = rhsd_data::clips::build_clip_set(
            b,
            &b.train_extent.clone(),
            det.config().clip_px,
            3, // jittered positives: hotspot anywhere within the core
            3,
            det.config().seed,
        );
        let px = det.config().raster_px();
        clips.extend(set.iter().map(|c| {
            (
                rhsd_data::clips::rasterize_window(b, &c.window, px),
                c.is_hotspot,
            )
        }));
    }
    det.train(&clips);
    det
}

/// Evaluates the clip detector on a case's test half, timing the scan.
pub fn evaluate_tcad18(
    det: &mut Tcad18Detector,
    bench: &Benchmark,
) -> (CaseResult, Vec<LayoutClip>) {
    let timer = rhsd_obs::Stopwatch::start();
    let (marked, eval) = det.scan(bench, &bench.test_extent.clone());
    let secs = timer.stop_into("eval.tcad18_scan");
    (CaseResult::new(bench.id.name(), &eval, secs), marked)
}

/// One detector's full Table 1 block: per-case rows plus the average.
#[derive(Debug, Clone)]
pub struct DetectorReport {
    /// Detector label ("Ours", "TCAD'18", …).
    pub name: String,
    /// Per-case rows followed by the average row.
    pub rows: Vec<CaseResult>,
    /// Training-dynamics summary (`None` for detectors without a
    /// region-network training run, e.g. TCAD'18).
    pub training: Option<TrainingSummary>,
}

impl DetectorReport {
    /// Builds a report, appending the average row. Every row (including
    /// the average) is mirrored into the run ledger as an `eval` event,
    /// so baseline and region-detector results land in the same stream.
    pub fn new(name: impl Into<String>, mut rows: Vec<CaseResult>) -> Self {
        let name = name.into();
        let avg = average_row(&rows);
        rows.push(avg);
        for row in &rows {
            row.emit_ledger(&name);
        }
        DetectorReport {
            name,
            rows,
            training: None,
        }
    }

    /// Attaches a training-dynamics summary for the bench record.
    pub fn with_training(mut self, training: Option<TrainingSummary>) -> Self {
        self.training = training;
        self
    }

    /// The average row ([`DetectorReport::new`] always appends one; an
    /// empty report — possible through the public field — averages to the
    /// all-zero row).
    pub fn average(&self) -> CaseResult {
        match self.rows.last() {
            Some(r) => r.clone(),
            None => average_row(&self.rows),
        }
    }

    /// Per-case rows, excluding the trailing average row.
    pub fn case_rows(&self) -> &[CaseResult] {
        &self.rows[..self.rows.len().saturating_sub(1)]
    }
}

/// Per-stage wall-clock totals for the bench record: span durations
/// summed by name, plus the `eval.*` / `scaling.*` stopwatch series from
/// the metrics registry. Empty when observability was disabled.
fn stage_secs() -> std::collections::BTreeMap<String, f64> {
    let mut stages = std::collections::BTreeMap::new();
    for e in rhsd_obs::span_events() {
        *stages.entry(e.name.to_string()).or_insert(0.0) += e.dur_secs;
    }
    let snap = rhsd_obs::snapshot();
    for (name, h) in &snap.histograms {
        if name.starts_with("eval.") || name.starts_with("scaling.") {
            stages.insert(name.clone(), h.sum);
        }
    }
    stages
}

/// Serialises detector reports as the machine-readable benchmark record
/// tracked across revisions (`BENCH_table1.json`, schema
/// `rhsd-bench-table/7`): the run's primary seed, the worker-thread count
/// of the `rhsd-par` pool (runtimes are only comparable like-for-like;
/// accuracy rows are thread-count invariant), per-stage wall-clock totals
/// from the observability snapshot, the tensor-workspace counters
/// (allocations, reused bytes, high-water residency — new in `/4`), a
/// `caches` block of hit/miss/eviction/byte gauges for the four
/// first-class caches (`cache.*` counter families — new in `/5`; zero
/// when observability was disabled), per detector the per-case
/// accuracy / false-alarm / runtime rows plus the average, and — new in
/// `/6` — an optional per-detector `training` block (final-epoch
/// loss/gradient/entropy stats plus sentinel-trip tags) summarising the
/// training dynamics behind the rows. New in `/7`: the top-level
/// `precision` (inference precision of the scan stage: `f32`, `bf16` or
/// `int8`) and `isa` (the SIMD instruction set the kernel dispatcher
/// selected, e.g. `avx2` — hardware-dependent like `threads`) string
/// fields, so `bench-diff` can refuse apples-to-oranges runtime
/// comparisons. Readers treat the newer blocks as optional so
/// `/2`–`/6` records still parse.
/// This is the record `cargo xtask bench-diff` compares across commits.
pub fn bench_json(
    source: &str,
    quick: bool,
    seed: u64,
    precision: Precision,
    reports: &[DetectorReport],
) -> String {
    use rhsd_obs::json::{escape, number};
    // `escape` yields string *contents*; `quoted` adds the delimiters.
    fn quoted(s: &str) -> String {
        format!("\"{}\"", escape(s))
    }
    // One cache family's gauges from the obs counter namespace.
    fn cache_json(snap: &rhsd_obs::MetricsSnapshot, family: &str) -> String {
        let g = |k: &str| {
            snap.counters
                .get(&format!("cache.{family}.{k}"))
                .copied()
                .unwrap_or(0)
        };
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"bytes\": {}}}",
            g("hits"),
            g("misses"),
            g("evictions"),
            g("bytes"),
        )
    }
    fn row_json(r: &CaseResult) -> String {
        format!(
            "{{\"case\": {}, \"accuracy_pct\": {}, \"false_alarms\": {}, \"seconds\": {}}}",
            quoted(&r.case),
            number(r.accuracy_pct),
            r.false_alarms,
            number(r.seconds),
        )
    }
    let mut o = String::with_capacity(2048);
    o.push_str("{\n  \"schema\": \"rhsd-bench-table/7\",\n");
    o.push_str(&format!("  \"source\": {},\n", quoted(source)));
    o.push_str(&format!("  \"quick\": {quick},\n"));
    o.push_str(&format!("  \"seed\": {seed},\n"));
    o.push_str(&format!("  \"threads\": {},\n", rhsd_par::threads()));
    // Precision is part of the result contract; the ISA tag is, like the
    // thread count, a property of the machine the record was made on.
    o.push_str(&format!("  \"precision\": {},\n", quoted(precision.name())));
    o.push_str(&format!(
        "  \"isa\": {},\n",
        quoted(rhsd_tensor::ops::kernels::isa_name())
    ));
    // Single line: scheduling-dependent (like the thread count), so the
    // determinism harness can strip it the same way it strips "threads".
    let ws = rhsd_tensor::workspace::stats();
    o.push_str(&format!(
        "  \"workspace\": {{\"allocs\": {}, \"bytes_reused\": {}, \"high_water_bytes\": {}}},\n",
        ws.allocs, ws.bytes_reused, ws.high_water
    ));
    // Cache-efficiency gauges (`cache.*` obs counters; zero when
    // observability was off). The workspace family is kept on its own
    // line: its counts are scheduling-dependent, so the determinism
    // harness strips that line exactly as it strips "threads".
    let snap = rhsd_obs::snapshot();
    o.push_str("  \"caches\": {\n");
    o.push_str(&format!(
        "    \"region_tile\": {},\n",
        cache_json(&snap, "region_tile")
    ));
    o.push_str(&format!(
        "    \"stem_feature\": {},\n",
        cache_json(&snap, "stem_feature")
    ));
    o.push_str(&format!(
        "    \"aerial_dedup\": {},\n",
        cache_json(&snap, "aerial_dedup")
    ));
    o.push_str(&format!(
        "    \"workspace\": {}\n",
        cache_json(&snap, "workspace")
    ));
    o.push_str("  },\n");
    o.push_str("  \"stage_secs\": {");
    let stages = stage_secs();
    for (i, (name, secs)) in stages.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!("\n    {}: {}", quoted(name), number(*secs)));
    }
    if !stages.is_empty() {
        o.push_str("\n  ");
    }
    o.push_str("},\n  \"detectors\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!("\n    {{\n      \"name\": {},\n", quoted(&r.name)));
        o.push_str("      \"cases\": [");
        for (j, row) in r.case_rows().iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str("\n        ");
            o.push_str(&row_json(row));
        }
        if !r.case_rows().is_empty() {
            o.push_str("\n      ");
        }
        o.push_str("],\n      \"average\": ");
        o.push_str(&row_json(&r.average()));
        if let Some(t) = &r.training {
            let trips = t
                .sentinel_trips
                .iter()
                .map(|s| quoted(s))
                .collect::<Vec<_>>()
                .join(", ");
            o.push_str(&format!(
                ",\n      \"training\": {{\"epochs\": {}, \"final_loss\": {}, \
                 \"final_grad_norm\": {}, \"final_label_entropy\": {}, \
                 \"final_pred_entropy\": {}, \"sentinel_trips\": [{trips}]}}",
                t.epochs,
                number(t.final_loss),
                number(t.final_grad_norm),
                number(t.final_label_entropy),
                number(t.final_pred_entropy),
            ));
        }
        o.push_str("\n    }");
    }
    if !reports.is_empty() {
        o.push_str("\n  ");
    }
    o.push_str("]\n}\n");
    debug_assert!(rhsd_obs::json::validate(&o).is_ok());
    o
}

/// Writes [`bench_json`] to `path`.
pub fn write_bench_json(
    path: impl AsRef<Path>,
    source: &str,
    quick: bool,
    seed: u64,
    precision: Precision,
    reports: &[DetectorReport],
) -> std::io::Result<()> {
    std::fs::write(path, bench_json(source, quick, seed, precision, reports))
}

/// Runs the full Table 1 comparison: TCAD'18, Faster R-CNN, SSD, Ours.
/// Also returns the trained "Ours" detector so callers can persist it
/// (`--save-model`) for the serving flow.
///
/// Training always runs in f32; `precision` lowers each trained
/// region-network detector before its evaluation rows are timed (the
/// clip-based TCAD'18 baseline has no network to lower and stays f32).
pub fn run_table1(effort: Effort, precision: Precision) -> (Vec<DetectorReport>, RegionDetector) {
    let benches = build_benchmarks();
    let region = RegionConfig::demo();
    let augment = effort == Effort::Full;
    let samples = merged_train_regions(&benches, &region, augment);

    // Incremental-scan caches: one tile cache per case (shared by every
    // region detector, so each test half is rasterised once for the whole
    // table) and one stem cache (identity-guarded, so detectors can share
    // it without ever replaying each other's activations).
    let tile_caches: Vec<RegionTileCache> = benches
        .iter()
        .map(|_| RegionTileCache::new(DEFAULT_TILE_CACHE_CAP))
        .collect();
    let stems = StemFeatureCache::new(DEFAULT_STEM_CACHE_CAP);

    let mut reports = Vec::new();

    // TCAD'18 clip-based baseline.
    let mut tcad = train_tcad18(&benches, effort);
    let rows = benches
        .iter()
        .map(|b| evaluate_tcad18(&mut tcad, b).0)
        .collect();
    reports.push(DetectorReport::new("TCAD'18", rows));

    // Faster R-CNN-style.
    let (mut frcnn, training) =
        train_region_network(faster_rcnn_config(&region), &samples, effort, 101);
    frcnn.set_precision(precision);
    let rows = benches
        .iter()
        .zip(&tile_caches)
        .map(|(b, t)| evaluate_region_detector_cached(&mut frcnn, b, t, &stems))
        .collect();
    reports.push(DetectorReport::new("Faster R-CNN", rows).with_training(training));

    // SSD-style.
    let (mut ssd, training) = train_region_network(ssd_config(&region), &samples, effort, 102);
    ssd.set_precision(precision);
    let rows = benches
        .iter()
        .zip(&tile_caches)
        .map(|(b, t)| evaluate_region_detector_cached(&mut ssd, b, t, &stems))
        .collect();
    reports.push(DetectorReport::new("SSD", rows).with_training(training));

    // Ours.
    let (mut ours, training) = train_region_network(ours_config(), &samples, effort, OURS_SEED);
    ours.set_precision(precision);
    let rows = benches
        .iter()
        .zip(&tile_caches)
        .map(|(b, t)| evaluate_region_detector_cached(&mut ours, b, t, &stems))
        .collect();
    reports.push(DetectorReport::new("Ours", rows).with_training(training));

    (reports, ours)
}

/// An in-place edit of an [`RhsdConfig`] naming one ablation variant.
type ConfigTweak = fn(&mut RhsdConfig);

/// Runs the Figure 10 ablation: w/o ED, w/o L2, w/o Refine, Full.
/// Also returns the trained "Full" detector for `--save-model`.
/// As in [`run_table1`], `precision` lowers each trained variant before
/// evaluation; training itself always runs in f32.
pub fn run_fig10(effort: Effort, precision: Precision) -> (Vec<DetectorReport>, RegionDetector) {
    let benches = build_benchmarks();
    let region = RegionConfig::demo();
    let augment = effort == Effort::Full;
    let samples = merged_train_regions(&benches, &region, augment);

    // All four ablation variants share each case's tile cache: the test
    // halves are rasterised once for the whole figure.
    let tile_caches: Vec<RegionTileCache> = benches
        .iter()
        .map(|_| RegionTileCache::new(DEFAULT_TILE_CACHE_CAP))
        .collect();
    let stems = StemFeatureCache::new(DEFAULT_STEM_CACHE_CAP);

    let variants: [(&str, ConfigTweak); 4] = [
        ("w/o. ED", |c| c.use_encoder_decoder = false),
        ("w/o. L2", |c| c.use_l2 = false),
        ("w/o. Refine", |c| c.use_refinement = false),
        ("Full", |_| {}),
    ];

    let mut reports = Vec::new();
    let mut full: Option<RegionDetector> = None;
    for (name, tweak) in &variants {
        let mut cfg = ours_config();
        tweak(&mut cfg);
        let (mut det, training) = train_region_network(cfg, &samples, effort, OURS_SEED);
        det.set_precision(precision);
        let rows = benches
            .iter()
            .zip(&tile_caches)
            .map(|(b, t)| evaluate_region_detector_cached(&mut det, b, t, &stems))
            .collect();
        reports.push(DetectorReport::new(*name, rows).with_training(training));
        if *name == "Full" {
            full = Some(det);
        }
    }
    let full = full.unwrap_or_else(|| unreachable!("variant list always contains Full"));
    (reports, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhsd_baselines::CaseResult;
    use rhsd_obs::json;

    fn report(name: &str, secs: f64, acc: f64) -> DetectorReport {
        let row = |case: &str| CaseResult {
            case: case.to_owned(),
            accuracy_pct: acc,
            false_alarms: 3,
            seconds: secs,
        };
        DetectorReport::new(name, vec![row("Case2"), row("Case3")])
    }

    #[test]
    fn bench_json_is_valid_and_carries_schema_seed_and_rows() {
        let summary = TrainingSummary {
            epochs: 4,
            final_loss: 0.25,
            final_grad_norm: 1.5,
            final_label_entropy: 0.62,
            final_pred_entropy: 0.58,
            sentinel_trips: vec!["loss_spike".to_owned()],
        };
        let doc = bench_json(
            "unit",
            true,
            103,
            Precision::Int8,
            &[report("Ours", 0.5, 90.0).with_training(Some(summary))],
        );
        let v = json::parse(&doc).expect("bench record parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("rhsd-bench-table/7")
        );
        assert_eq!(v.get("precision").and_then(|p| p.as_str()), Some("int8"));
        assert_eq!(
            v.get("isa").and_then(|i| i.as_str()),
            Some(rhsd_tensor::ops::kernels::isa_name())
        );
        let ws = v.get("workspace").expect("workspace counters present");
        assert!(ws.get("allocs").and_then(|a| a.as_u64()).is_some());
        assert!(ws.get("bytes_reused").and_then(|a| a.as_u64()).is_some());
        assert!(ws
            .get("high_water_bytes")
            .and_then(|a| a.as_u64())
            .is_some());
        let caches = v.get("caches").expect("caches block present");
        for family in ["region_tile", "stem_feature", "aerial_dedup", "workspace"] {
            let c = caches.get(family).expect("cache family present");
            for gauge in ["hits", "misses", "evictions", "bytes"] {
                assert!(
                    c.get(gauge).and_then(|g| g.as_u64()).is_some(),
                    "caches.{family}.{gauge} missing"
                );
            }
        }
        assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(103));
        assert_eq!(v.get("quick").and_then(|q| q.as_bool()), Some(true));
        assert_eq!(
            v.get("threads").and_then(|t| t.as_u64()),
            Some(rhsd_par::threads() as u64)
        );
        let dets = v
            .get("detectors")
            .and_then(|d| d.as_arr())
            .expect("detectors array");
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].get("name").and_then(|n| n.as_str()), Some("Ours"));
        let cases = dets[0]
            .get("cases")
            .and_then(|c| c.as_arr())
            .expect("cases");
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].get("case").and_then(|c| c.as_str()), Some("Case2"));
        let avg = dets[0].get("average").expect("average row");
        assert_eq!(avg.get("accuracy_pct").and_then(|a| a.as_f64()), Some(90.0));
        assert_eq!(avg.get("false_alarms").and_then(|f| f.as_u64()), Some(3));
        // The /6 training block is attached per detector when present.
        let training = dets[0].get("training").expect("training block");
        assert_eq!(training.get("epochs").and_then(|e| e.as_u64()), Some(4));
        assert_eq!(
            training.get("final_loss").and_then(|l| l.as_f64()),
            Some(0.25)
        );
        let trips = training
            .get("sentinel_trips")
            .and_then(|t| t.as_arr())
            .expect("sentinel_trips array");
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].as_str(), Some("loss_spike"));
    }

    #[test]
    fn bench_json_omits_training_block_when_absent() {
        let doc = bench_json(
            "unit",
            true,
            103,
            Precision::F32,
            &[report("Ours", 0.5, 90.0)],
        );
        let v = json::parse(&doc).expect("bench record parses");
        let dets = v
            .get("detectors")
            .and_then(|d| d.as_arr())
            .expect("detectors array");
        assert!(dets[0].get("training").is_none());
    }

    #[test]
    fn bench_json_handles_empty_reports() {
        let doc = bench_json("unit", false, 0, Precision::F32, &[]);
        let v = json::parse(&doc).expect("empty record parses");
        assert_eq!(
            v.get("detectors").and_then(|d| d.as_arr()).map(<[_]>::len),
            Some(0)
        );
    }
}
