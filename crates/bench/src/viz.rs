//! SVG rendering of detection results — the Figure 9 visualisation.
//!
//! Ground truth, detected hotspots, missed hotspots and false alarms are
//! drawn over the layout geometry with the same visual vocabulary as the
//! paper: detected hotspots (solid boxes), missed hotspots (dashed boxes),
//! false alarms (crossed boxes).

use rhsd_baselines::LayoutClip;
use rhsd_layout::{Layout, Point, Rect, METAL1};

/// Classification of each detection drawn in the figure (missed hotspots
/// are tracked separately from the unmatched ground-truth list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mark {
    Detected,
    FalseAlarm,
}

/// Renders one layout window with detections and ground truth as an SVG
/// document string.
///
/// Matching repeats the Def. 1 logic: a detection whose core contains an
/// unmatched hotspot is *detected*; unmatched hotspots are *missed*;
/// remaining detections are *false alarms*.
pub fn render_svg(
    layout: &Layout,
    window: &Rect,
    detections: &[LayoutClip],
    hotspots: &[Point],
    px_per_nm: f64,
) -> String {
    let w = (window.width() as f64 * px_per_nm).ceil();
    let h = (window.height() as f64 * px_per_nm).ceil();
    let to_x = |x: i64| (x - window.x0) as f64 * px_per_nm;
    // SVG y grows downward; layout y grows upward.
    let to_y = |y: i64| h - (y - window.y0) as f64 * px_per_nm;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n"
    ));

    // layout geometry
    svg.push_str("<g fill=\"#9ecae1\" stroke=\"none\">\n");
    for shape in layout.query(METAL1, window) {
        let c = match shape.intersection(window) {
            Some(c) => c,
            None => continue,
        };
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\"/>\n",
            to_x(c.x0),
            to_y(c.y1),
            c.width() as f64 * px_per_nm,
            c.height() as f64 * px_per_nm,
        ));
    }
    svg.push_str("</g>\n");

    // match detections to hotspots (Def. 1)
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| detections[b].score.total_cmp(&detections[a].score));
    let mut matched_hotspot = vec![false; hotspots.len()];
    let mut det_marks = vec![Mark::FalseAlarm; detections.len()];
    for &di in &order {
        let core = detections[di].clip.core();
        if let Some((hi, _)) = hotspots
            .iter()
            .enumerate()
            .find(|(hi, p)| !matched_hotspot[*hi] && core.contains(**p))
        {
            matched_hotspot[hi] = true;
            det_marks[di] = Mark::Detected;
        }
    }

    // detections
    for (det, mark) in detections.iter().zip(det_marks.iter()) {
        let r = det.clip;
        let (x, y) = (to_x(r.x0), to_y(r.y1));
        let (rw, rh) = (r.width() as f64 * px_per_nm, r.height() as f64 * px_per_nm);
        match mark {
            Mark::Detected => svg.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{rw:.1}\" height=\"{rh:.1}\" \
                 fill=\"none\" stroke=\"#2ca02c\" stroke-width=\"2\"/>\n"
            )),
            Mark::FalseAlarm => svg.push_str(&format!(
                "<g stroke=\"#d62728\" stroke-width=\"2\" fill=\"none\">\
                 <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{rw:.1}\" height=\"{rh:.1}\"/>\
                 <line x1=\"{x:.1}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{:.1}\"/></g>\n",
                x + rw,
                y + rh
            )),
        }
    }

    // missed hotspots
    for (p, matched) in hotspots.iter().zip(matched_hotspot.iter()) {
        if *matched {
            continue;
        }
        let side = 24.0_f64.max(6.0);
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{side:.1}\" height=\"{side:.1}\" \
             fill=\"none\" stroke=\"#ff7f0e\" stroke-width=\"2\" stroke-dasharray=\"4 3\"/>\n",
            to_x(p.x) - side / 2.0,
            to_y(p.y) - side / 2.0,
        ));
    }

    svg.push_str("</svg>\n");
    svg
}

/// Summary counts of a rendered figure (used by tests and captions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VizCounts {
    /// Detections matched to a hotspot.
    pub detected: usize,
    /// Hotspots with no matching detection.
    pub missed: usize,
    /// Detections with no matching hotspot.
    pub false_alarms: usize,
}

/// Computes the caption counts without rendering.
pub fn viz_counts(detections: &[LayoutClip], hotspots: &[Point]) -> VizCounts {
    let eval = rhsd_baselines::evaluate_layout(detections, hotspots);
    VizCounts {
        detected: eval.true_positives,
        missed: eval.ground_truth - eval.true_positives,
        false_alarms: eval.false_alarms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layout() -> Layout {
        let mut l = Layout::new(Rect::new(0, 0, 1000, 1000));
        l.add(METAL1, Rect::new(100, 450, 900, 500));
        l
    }

    #[test]
    fn svg_is_well_formed_and_contains_layers() {
        let l = simple_layout();
        let dets = [LayoutClip {
            clip: Rect::centered(500, 475, 300, 300),
            score: 0.9,
        }];
        let hs = [Point::new(500, 475)];
        let svg = render_svg(&l, &Rect::new(0, 0, 1000, 1000), &dets, &hs, 0.1);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("#9ecae1"), "layout geometry colour present");
        assert!(svg.contains("#2ca02c"), "detected colour present");
        assert!(!svg.contains("#ff7f0e"), "no missed hotspots");
    }

    #[test]
    fn missed_and_false_alarm_marks() {
        let l = simple_layout();
        let dets = [LayoutClip {
            clip: Rect::centered(200, 200, 100, 100),
            score: 0.8,
        }];
        let hs = [Point::new(800, 800)];
        let svg = render_svg(&l, &Rect::new(0, 0, 1000, 1000), &dets, &hs, 0.1);
        assert!(svg.contains("#d62728"), "false-alarm mark present");
        assert!(svg.contains("stroke-dasharray"), "missed mark present");
    }

    #[test]
    fn counts_match_eval_semantics() {
        let dets = [
            LayoutClip {
                clip: Rect::centered(500, 500, 300, 300),
                score: 0.9,
            },
            LayoutClip {
                clip: Rect::centered(100, 100, 100, 100),
                score: 0.7,
            },
        ];
        let hs = [Point::new(500, 500), Point::new(900, 900)];
        let c = viz_counts(&dets, &hs);
        assert_eq!(
            c,
            VizCounts {
                detected: 1,
                missed: 1,
                false_alarms: 1
            }
        );
    }
}
