//! # rhsd-bench
//!
//! Reproduction harness for the paper's evaluation: the [`pipeline`]
//! trains and times every detector of Table 1, [`table`] renders the
//! report, and [`viz`] draws Figure-9-style SVG comparisons. The
//! `repro_table1`, `repro_fig9` and `repro_fig10` binaries regenerate the
//! corresponding table/figures; the criterion benches under `benches/`
//! measure the micro-level runtime claims.

#![warn(missing_docs)]

pub mod pipeline;
pub mod table;
pub mod viz;
