//! # rhsd-bench
//!
//! Reproduction harness for the paper's evaluation: the [`pipeline`]
//! trains and times every detector of Table 1, [`table`] renders the
//! report, and [`viz`] draws Figure-9-style SVG comparisons. The
//! `repro_table1`, `repro_fig9` and `repro_fig10` binaries regenerate the
//! corresponding table/figures; the criterion benches under `benches/`
//! measure the micro-level runtime claims.
//!
//! All binaries share the [`args`] flag parser: `--quick` for reduced
//! effort, `--trace <path>` / `--metrics <path>` to capture an
//! observability trace of the run (see `rhsd-obs`).

pub mod args;
pub mod pipeline;
pub mod table;
pub mod viz;

pub use args::{fail, usage, BenchArgs};
