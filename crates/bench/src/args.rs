//! Shared command-line handling for the `repro_*` binaries.
//!
//! Every reproduction binary accepts the same flags:
//!
//! - `--quick` — reduced effort (fewer epochs, fewer cases/sizes);
//! - `--trace <path>` — enable observability and write a Chrome
//!   trace-event file (open in Perfetto or `chrome://tracing`);
//! - `--metrics <path>` — enable observability and write a metrics
//!   snapshot (counters + histogram summaries with p50/p95/p99);
//! - `--help` — print usage.
//!
//! Unknown flags are rejected with a usage message instead of being
//! silently ignored.
//!
//! Exit codes: `0` on success (and `--help`), `1` on a runtime failure
//! reported via [`fail`], `2` on a usage error.

use std::path::PathBuf;

use crate::pipeline::Effort;

/// Parsed options shared by every reproduction binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchArgs {
    /// Run at reduced effort (`--quick`).
    pub quick: bool,
    /// Chrome trace-event output path (`--trace <path>`).
    pub trace: Option<PathBuf>,
    /// Metrics snapshot output path (`--metrics <path>`).
    pub metrics: Option<PathBuf>,
}

/// Reports a fatal runtime error (as opposed to a usage error, which
/// exits with code 2 via [`BenchArgs::parse`]) and exits with code 1.
pub fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

/// Usage text for a binary named `bin`.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--quick] [--trace <path>] [--metrics <path>]\n\
         \n\
         --quick            reduced-effort run (seconds instead of minutes)\n\
         --trace <path>     write a Chrome trace-event JSON (Perfetto-viewable)\n\
         --metrics <path>   write a metrics snapshot JSON (p50/p95/p99 per stage)\n\
         --help             show this message"
    )
}

impl BenchArgs {
    /// Parses the process arguments; prints usage and exits on `--help`
    /// or on an invalid flag.
    pub fn parse(bin: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(Some(args)) => {
                args.init_obs();
                args
            }
            Ok(None) => {
                println!("{}", usage(bin));
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{}", usage(bin));
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list. Returns `Ok(None)` when `--help`
    /// was requested, `Err` with a message on invalid input.
    pub fn parse_from<I, S>(args: I) -> Result<Option<Self>, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--trace" => {
                    if out.trace.is_some() {
                        return Err("--trace given more than once".into());
                    }
                    let path = it.next().ok_or("--trace requires a path argument")?;
                    out.trace = Some(PathBuf::from(path));
                }
                "--metrics" => {
                    if out.metrics.is_some() {
                        return Err("--metrics given more than once".into());
                    }
                    let path = it.next().ok_or("--metrics requires a path argument")?;
                    out.metrics = Some(PathBuf::from(path));
                }
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(Some(out))
    }

    /// The effort level the flags select.
    pub fn effort(&self) -> Effort {
        if self.quick {
            Effort::Quick
        } else {
            Effort::Full
        }
    }

    /// Turns observability on when any export was requested.
    pub fn init_obs(&self) {
        if self.trace.is_some() || self.metrics.is_some() {
            rhsd_obs::set_enabled(true);
        }
    }

    /// Writes the requested trace/metrics exports (call once, at the end
    /// of the run).
    pub fn export_obs(&self) {
        if let Some(path) = &self.trace {
            match rhsd_obs::write_chrome_trace(path) {
                Ok(()) => eprintln!("wrote trace to {}", path.display()),
                Err(e) => eprintln!("failed to write trace {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.metrics {
            match rhsd_obs::write_metrics(path) {
                Ok(()) => eprintln!("wrote metrics to {}", path.display()),
                Err(e) => eprintln!("failed to write metrics {}: {e}", path.display()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_flags() {
        let args = BenchArgs::parse_from(["--quick", "--trace", "t.json", "--metrics", "m.json"])
            .unwrap()
            .unwrap();
        assert!(args.quick);
        assert_eq!(args.trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(
            args.metrics.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert_eq!(args.effort(), Effort::Quick);
    }

    #[test]
    fn empty_args_are_full_effort() {
        let args = BenchArgs::parse_from(Vec::<String>::new())
            .unwrap()
            .unwrap();
        assert_eq!(args, BenchArgs::default());
        assert_eq!(args.effort(), Effort::Full);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = BenchArgs::parse_from(["--qiuck"]).unwrap_err();
        assert!(err.contains("--qiuck"), "{err}");
    }

    #[test]
    fn missing_path_is_rejected() {
        assert!(BenchArgs::parse_from(["--trace"]).is_err());
        assert!(BenchArgs::parse_from(["--metrics"]).is_err());
    }

    #[test]
    fn duplicate_path_flags_are_rejected() {
        let err = BenchArgs::parse_from(["--trace", "a", "--trace", "b"]).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        let err = BenchArgs::parse_from(["--metrics", "a", "--metrics", "b"]).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(BenchArgs::parse_from(["--help"]).unwrap(), None);
        assert_eq!(BenchArgs::parse_from(["-h", "--junk"]).unwrap(), None);
    }

    #[test]
    fn usage_names_every_flag() {
        let u = usage("repro_table1");
        for flag in ["--quick", "--trace", "--metrics", "--help"] {
            assert!(u.contains(flag), "usage missing {flag}");
        }
    }
}
