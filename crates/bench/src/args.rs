//! Shared command-line handling for the `repro_*` binaries.
//!
//! Every reproduction binary accepts the same flags:
//!
//! - `--quick` — reduced effort (fewer epochs, fewer cases/sizes);
//! - `--trace <path>` — enable observability and write a Chrome
//!   trace-event file (open in Perfetto or `chrome://tracing`);
//! - `--metrics <path>` — enable observability and write a metrics
//!   snapshot (counters + histogram summaries with p50/p95/p99);
//! - `--ledger <path>` — write the JSONL run ledger there instead of the
//!   default `LEDGER_<name>.jsonl` (the ledger is **on by default** for
//!   every repro run; see `rhsd_obs::ledger`);
//! - `--no-ledger` — disable the run ledger;
//! - `--bench-out <path>` — where to write the machine-readable benchmark
//!   record (used by `repro_table1`; default `BENCH_table1.json`);
//! - `--save-model <path>` — save the run's trained model as a loadable
//!   `rhsd-model/1` document (what `rhsd-serve --model` consumes);
//! - `--threads <n>` — worker-thread count for the `rhsd-par` pool
//!   (default: the `RHSD_THREADS` environment variable, else the
//!   machine's available parallelism; results are bit-identical at any
//!   value);
//! - `--precision <p>` — inference precision for the scan/evaluation
//!   stage: `f32` (default, bit-identical reference), `bf16`
//!   (bf16-rounded weights) or `int8` (quantised stem). Training always
//!   runs in f32; see [`rhsd_core::Precision`];
//! - `--profile[=<hz>]` — run the in-process sampling profiler for the
//!   whole run (default 97 Hz) and write `PROFILE_<name>.collapsed`
//!   (Brendan-Gregg collapsed stacks) plus `PROFILE_<name>.html` (a
//!   self-contained flame chart). Sampling only reads span stacks, so
//!   the run's results are bit-identical to an unprofiled run;
//! - `--span-tree` — print the hierarchical span-tree attribution
//!   (inclusive/exclusive time per stack path) on exit;
//! - `--help` — print usage.
//!
//! Unknown flags are rejected with a usage message instead of being
//! silently ignored.
//!
//! On exit every binary prints the paths of all artifacts it wrote
//! (bench record, figures, trace, metrics, ledger) via
//! [`BenchArgs::finish_run`], so CI logs show where outputs went.
//!
//! Exit codes: `0` on success (and `--help`), `1` on a runtime failure
//! reported via [`fail`], `2` on a usage error.

use std::path::PathBuf;

use crate::pipeline::Effort;

/// Parsed options shared by every reproduction binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchArgs {
    /// Run at reduced effort (`--quick`).
    pub quick: bool,
    /// Chrome trace-event output path (`--trace <path>`).
    pub trace: Option<PathBuf>,
    /// Metrics snapshot output path (`--metrics <path>`).
    pub metrics: Option<PathBuf>,
    /// Run-ledger output path (`--ledger <path>`, or the per-binary
    /// default unless `--no-ledger` was given).
    pub ledger: Option<PathBuf>,
    /// The run ledger was explicitly disabled (`--no-ledger`).
    pub no_ledger: bool,
    /// Machine-readable benchmark record path (`--bench-out <path>`).
    pub bench_out: Option<PathBuf>,
    /// Worker-thread count override (`--threads <n>`); `None` keeps the
    /// pool default (`RHSD_THREADS` or available parallelism).
    pub threads: Option<usize>,
    /// Inference precision for the scan stage (`--precision <p>`);
    /// `None` keeps the f32 default. See [`BenchArgs::precision`].
    pub precision: Option<rhsd_core::Precision>,
    /// Sampling-profiler rate in Hz (`--profile[=<hz>]`); `None` means
    /// no profiling.
    pub profile: Option<u32>,
    /// Save the run's trained model there (`--save-model <path>`), so
    /// `rhsd-serve` and users get weights without patching code.
    pub save_model: Option<PathBuf>,
    /// Print the span-tree attribution on exit (`--span-tree`).
    pub span_tree: bool,
    /// Binary name captured by [`BenchArgs::parse`] (names the profile
    /// artifacts); empty when built via [`BenchArgs::parse_from`].
    bin: String,
    /// Artifact paths written so far (printed by [`BenchArgs::finish_run`]).
    artifacts: Vec<PathBuf>,
}

/// Reports a fatal runtime error (as opposed to a usage error, which
/// exits with code 2 via [`BenchArgs::parse`]) and exits with code 1.
/// An open run ledger is closed with status `"error"` first, so the
/// failure is recorded in the stream.
pub fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    let _ = rhsd_obs::ledger::close("error");
    std::process::exit(1);
}

/// The default run-ledger path for a binary named `bin`
/// (`repro_table1` → `LEDGER_table1.jsonl`).
pub fn default_ledger_path(bin: &str) -> PathBuf {
    let name = bin.strip_prefix("repro_").unwrap_or(bin);
    PathBuf::from(format!("LEDGER_{name}.jsonl"))
}

/// Usage text for a binary named `bin`.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--quick] [--trace <path>] [--metrics <path>]\n\
         \x20           [--ledger <path>] [--no-ledger] [--bench-out <path>]\n\
         \x20           [--threads <n>]\n\
         \n\
         --quick            reduced-effort run (seconds instead of minutes)\n\
         --trace <path>     write a Chrome trace-event JSON (Perfetto-viewable)\n\
         --metrics <path>   write a metrics snapshot JSON (p50/p95/p99 per stage)\n\
         --ledger <path>    write the JSONL run ledger there (default: {ledger})\n\
         --no-ledger        disable the run ledger\n\
         --bench-out <path> machine-readable benchmark record (repro_table1;\n\
         \x20                  default: BENCH_table1.json)\n\
         --save-model <path> save the run's trained model as a loadable\n\
         \x20                  rhsd-model/1 document (for `rhsd-serve --model`)\n\
         --threads <n>      rhsd-par worker threads (default: RHSD_THREADS or\n\
         \x20                  available parallelism; output is bit-identical\n\
         \x20                  at any value)\n\
         --precision <p>    scan/evaluation precision: f32 (default, exact),\n\
         \x20                  bf16 (rounded weights) or int8 (quantised stem);\n\
         \x20                  training always runs in f32\n\
         --profile[=<hz>]   sample all live span stacks (default 97 Hz) and\n\
         \x20                  write PROFILE_{name}.collapsed / .html\n\
         --span-tree        print span-tree attribution (incl/excl time) on exit\n\
         --help             show this message",
        ledger = default_ledger_path(bin).display(),
        name = profile_stem(bin),
    )
}

/// The artifact stem for a binary named `bin`
/// (`repro_table1` → `table1`, used as `PROFILE_table1.collapsed`).
fn profile_stem(bin: &str) -> &str {
    let stem = bin.strip_prefix("repro_").unwrap_or(bin);
    if stem.is_empty() {
        "run"
    } else {
        stem
    }
}

impl BenchArgs {
    /// Parses the process arguments; prints usage and exits on `--help`
    /// or on an invalid flag. Applies the per-binary default ledger path
    /// and enables observability when any export is active.
    pub fn parse(bin: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(Some(mut args)) => {
                args.bin = bin.to_owned();
                if args.ledger.is_none() && !args.no_ledger {
                    args.ledger = Some(default_ledger_path(bin));
                }
                if let Some(n) = args.threads {
                    rhsd_par::set_threads(n);
                }
                args.init_obs();
                if let Some(hz) = args.profile {
                    rhsd_obs::profile::start_global(hz);
                }
                args
            }
            Ok(None) => {
                println!("{}", usage(bin));
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{}", usage(bin));
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list. Returns `Ok(None)` when `--help`
    /// was requested, `Err` with a message on invalid input. (No default
    /// ledger path is applied here — that needs the binary name; see
    /// [`BenchArgs::parse`].)
    pub fn parse_from<I, S>(args: I) -> Result<Option<Self>, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter().map(Into::into);
        let path_flag =
            |slot: &mut Option<PathBuf>, flag: &str, value: Option<String>| -> Result<(), String> {
                if slot.is_some() {
                    return Err(format!("{flag} given more than once"));
                }
                let path = value.ok_or(format!("{flag} requires a path argument"))?;
                *slot = Some(PathBuf::from(path));
                Ok(())
            };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--trace" => path_flag(&mut out.trace, "--trace", it.next())?,
                "--metrics" => path_flag(&mut out.metrics, "--metrics", it.next())?,
                "--ledger" => path_flag(&mut out.ledger, "--ledger", it.next())?,
                "--bench-out" => path_flag(&mut out.bench_out, "--bench-out", it.next())?,
                "--save-model" => path_flag(&mut out.save_model, "--save-model", it.next())?,
                "--threads" => {
                    if out.threads.is_some() {
                        return Err("--threads given more than once".into());
                    }
                    let value = it.next().ok_or("--threads requires a count argument")?;
                    match rhsd_par::parse_threads(Some(&value)) {
                        Some(n) => out.threads = Some(n),
                        None => {
                            return Err(format!(
                                "--threads needs a positive integer, got `{value}`"
                            ))
                        }
                    }
                }
                "--precision" => {
                    if out.precision.is_some() {
                        return Err("--precision given more than once".into());
                    }
                    let value = it
                        .next()
                        .ok_or("--precision requires a value (f32, bf16 or int8)")?;
                    match value.parse::<rhsd_core::Precision>() {
                        Ok(p) => out.precision = Some(p),
                        Err(e) => return Err(format!("--precision: {e}")),
                    }
                }
                "--no-ledger" => out.no_ledger = true,
                "--span-tree" => out.span_tree = true,
                "--profile" => {
                    if out.profile.is_some() {
                        return Err("--profile given more than once".into());
                    }
                    out.profile = Some(rhsd_obs::profile::DEFAULT_HZ);
                }
                "--help" | "-h" => return Ok(None),
                other => {
                    if let Some(hz) = other.strip_prefix("--profile=") {
                        if out.profile.is_some() {
                            return Err("--profile given more than once".into());
                        }
                        match rhsd_obs::profile::parse_rate(hz) {
                            Ok(n) => out.profile = Some(n),
                            Err(e) => return Err(format!("--profile: {e}")),
                        }
                        continue;
                    }
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
        if out.no_ledger && out.ledger.is_some() {
            return Err("--ledger and --no-ledger are mutually exclusive".into());
        }
        Ok(Some(out))
    }

    /// The inference precision the flags select (f32 unless
    /// `--precision` was given).
    pub fn precision(&self) -> rhsd_core::Precision {
        self.precision.unwrap_or_default()
    }

    /// The effort level the flags select.
    pub fn effort(&self) -> Effort {
        if self.quick {
            Effort::Quick
        } else {
            Effort::Full
        }
    }

    /// Turns observability on when any export (trace, metrics, run
    /// ledger, profiler or span tree) is active.
    pub fn init_obs(&self) {
        if self.trace.is_some()
            || self.metrics.is_some()
            || self.ledger.is_some()
            || self.profile.is_some()
            || self.span_tree
        {
            rhsd_obs::set_enabled(true);
        }
    }

    /// Opens the run ledger (when enabled) and writes its `run_start`
    /// manifest: binary name, primary seed, config summary, effort, host,
    /// crate version and worker-thread count. Call once, right after
    /// parsing.
    ///
    /// A ledger that cannot be opened is reported and disabled rather
    /// than failing the run.
    pub fn start_run(&mut self, bin: &str, seed: u64, config: &str) {
        let Some(path) = self.ledger.clone() else {
            return;
        };
        let manifest = rhsd_obs::ledger::Manifest {
            bin: bin.to_owned(),
            seed,
            config: config.to_owned(),
            effort: format!("{:?}", self.effort()),
            host: rhsd_obs::ledger::host_string(),
            version: env!("CARGO_PKG_VERSION").to_owned(),
            threads: rhsd_par::threads() as u64,
            precision: self.precision().name().to_owned(),
            isa: rhsd_tensor::ops::kernels::isa_name().to_owned(),
        };
        if let Err(e) = rhsd_obs::ledger::open(&path, manifest) {
            eprintln!("failed to open ledger {}: {e}", path.display());
            self.ledger = None;
        }
    }

    /// Records an artifact path for the exit summary printed by
    /// [`BenchArgs::finish_run`], and emits an `artifact` line to the
    /// run ledger (when one is active) so downstream tooling can find
    /// the file from the ledger alone.
    pub fn note_artifact(&mut self, path: impl Into<PathBuf>) {
        let path = path.into();
        rhsd_obs::ledger::emit(&rhsd_obs::ledger::Event::Artifact {
            path: path.display().to_string(),
        });
        self.artifacts.push(path);
    }

    /// Saves the trained model when `--save-model` was given (a no-op
    /// otherwise), noting the artifact. A model that cannot be written
    /// fails the run via [`fail`] — a silently missing model would break
    /// the serve flow the flag exists for.
    pub fn save_model_if_requested(&mut self, detector: &mut rhsd_core::RegionDetector) {
        let Some(path) = self.save_model.clone() else {
            return;
        };
        match rhsd_core::persist::save_to_path(detector.network_mut(), &path) {
            Ok(()) => {
                eprintln!("saved trained model: {}", path.display());
                self.note_artifact(path);
            }
            Err(e) => fail("save model", e),
        }
    }

    /// Finishes the run: stops the sampling profiler and writes its
    /// collapsed-stacks / flame-chart artifacts, prints the span tree
    /// when requested, writes the trace/metrics exports, closes the run
    /// ledger with `status` (emitting its `run_end` line), and prints
    /// the path of every artifact the run wrote.
    pub fn finish_run(&mut self, status: &str) {
        if self.profile.is_some() {
            if let Some(profile) = rhsd_obs::profile::stop_global() {
                let stem = profile_stem(&self.bin).to_owned();
                let collapsed = PathBuf::from(format!("PROFILE_{stem}.collapsed"));
                match std::fs::write(&collapsed, profile.collapsed()) {
                    Ok(()) => self.artifacts.push(collapsed),
                    Err(e) => eprintln!("failed to write {}: {e}", collapsed.display()),
                }
                let html = PathBuf::from(format!("PROFILE_{stem}.html"));
                let title = format!("{stem} — {} Hz sampling profile", profile.hz);
                match std::fs::write(&html, profile.flame_html(&title)) {
                    Ok(()) => self.artifacts.push(html),
                    Err(e) => eprintln!("failed to write {}: {e}", html.display()),
                }
            }
        }
        if self.span_tree {
            let tree = rhsd_obs::SpanTree::from_events(&rhsd_obs::span_events());
            eprint!("{}", tree.render());
        }
        if let Some(path) = &self.trace {
            match rhsd_obs::write_chrome_trace(path) {
                Ok(()) => self.artifacts.push(path.clone()),
                Err(e) => eprintln!("failed to write trace {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.metrics {
            match rhsd_obs::write_metrics(path) {
                Ok(()) => self.artifacts.push(path.clone()),
                Err(e) => eprintln!("failed to write metrics {}: {e}", path.display()),
            }
        }
        if let Some(path) = rhsd_obs::ledger::close(status) {
            self.artifacts.push(path);
        }
        if !self.artifacts.is_empty() {
            eprintln!("artifacts:");
            for a in &self.artifacts {
                eprintln!("  {}", a.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_flags() {
        let args = BenchArgs::parse_from([
            "--quick",
            "--trace",
            "t.json",
            "--metrics",
            "m.json",
            "--ledger",
            "run.jsonl",
            "--bench-out",
            "b.json",
            "--save-model",
            "model.json",
        ])
        .unwrap()
        .unwrap();
        assert!(args.quick);
        assert_eq!(args.trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(
            args.metrics.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert_eq!(
            args.ledger.as_deref(),
            Some(std::path::Path::new("run.jsonl"))
        );
        assert_eq!(
            args.bench_out.as_deref(),
            Some(std::path::Path::new("b.json"))
        );
        assert_eq!(
            args.save_model.as_deref(),
            Some(std::path::Path::new("model.json"))
        );
        assert_eq!(args.effort(), Effort::Quick);
    }

    #[test]
    fn empty_args_are_full_effort() {
        let args = BenchArgs::parse_from(Vec::<String>::new())
            .unwrap()
            .unwrap();
        assert_eq!(args, BenchArgs::default());
        assert_eq!(args.effort(), Effort::Full);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = BenchArgs::parse_from(["--qiuck"]).unwrap_err();
        assert!(err.contains("--qiuck"), "{err}");
    }

    #[test]
    fn missing_path_is_rejected() {
        assert!(BenchArgs::parse_from(["--trace"]).is_err());
        assert!(BenchArgs::parse_from(["--metrics"]).is_err());
        assert!(BenchArgs::parse_from(["--ledger"]).is_err());
        assert!(BenchArgs::parse_from(["--bench-out"]).is_err());
        assert!(BenchArgs::parse_from(["--save-model"]).is_err());
    }

    #[test]
    fn duplicate_path_flags_are_rejected() {
        for flag in [
            "--trace",
            "--metrics",
            "--ledger",
            "--bench-out",
            "--save-model",
        ] {
            let err = BenchArgs::parse_from([flag, "a", flag, "b"]).unwrap_err();
            assert!(err.contains(flag), "{err}");
        }
    }

    #[test]
    fn no_ledger_disables_and_conflicts_with_ledger() {
        let args = BenchArgs::parse_from(["--no-ledger"]).unwrap().unwrap();
        assert!(args.no_ledger);
        assert_eq!(args.ledger, None);
        let err = BenchArgs::parse_from(["--no-ledger", "--ledger", "x.jsonl"]).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn threads_flag_parses_and_rejects_bad_values() {
        let args = BenchArgs::parse_from(["--threads", "4"]).unwrap().unwrap();
        assert_eq!(args.threads, Some(4));
        let args = BenchArgs::parse_from(Vec::<String>::new())
            .unwrap()
            .unwrap();
        assert_eq!(args.threads, None);
        for bad in ["0", "-1", "four", ""] {
            let err = BenchArgs::parse_from(["--threads", bad]).unwrap_err();
            assert!(err.contains("--threads"), "{err}");
        }
        assert!(BenchArgs::parse_from(["--threads"]).is_err());
        let err = BenchArgs::parse_from(["--threads", "2", "--threads", "3"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn profile_flag_parses_default_and_explicit_rates() {
        let args = BenchArgs::parse_from(["--profile"]).unwrap().unwrap();
        assert_eq!(args.profile, Some(rhsd_obs::profile::DEFAULT_HZ));
        let args = BenchArgs::parse_from(["--profile=250"]).unwrap().unwrap();
        assert_eq!(args.profile, Some(250));
        let args = BenchArgs::parse_from(Vec::<String>::new())
            .unwrap()
            .unwrap();
        assert_eq!(args.profile, None);
        for bad in [
            "--profile=0",
            "--profile=-5",
            "--profile=fast",
            "--profile=",
        ] {
            let err = BenchArgs::parse_from([bad]).unwrap_err();
            assert!(err.contains("--profile"), "{err}");
        }
        let err = BenchArgs::parse_from(["--profile", "--profile=97"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn precision_flag_parses_and_rejects_bad_values() {
        use rhsd_core::Precision;
        let args = BenchArgs::parse_from(Vec::<String>::new())
            .unwrap()
            .unwrap();
        assert_eq!(args.precision, None);
        assert_eq!(args.precision(), Precision::F32);
        for (value, want) in [
            ("f32", Precision::F32),
            ("bf16", Precision::Bf16),
            ("int8", Precision::Int8),
        ] {
            let args = BenchArgs::parse_from(["--precision", value])
                .unwrap()
                .unwrap();
            assert_eq!(args.precision, Some(want));
            assert_eq!(args.precision(), want);
        }
        for bad in ["fp16", "F32", ""] {
            let err = BenchArgs::parse_from(["--precision", bad]).unwrap_err();
            assert!(err.contains("--precision"), "{err}");
        }
        assert!(BenchArgs::parse_from(["--precision"]).is_err());
        let err = BenchArgs::parse_from(["--precision", "f32", "--precision", "int8"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn span_tree_flag_parses() {
        let args = BenchArgs::parse_from(["--span-tree"]).unwrap().unwrap();
        assert!(args.span_tree);
        let args = BenchArgs::parse_from(Vec::<String>::new())
            .unwrap()
            .unwrap();
        assert!(!args.span_tree);
    }

    #[test]
    fn profile_stem_names_artifacts() {
        assert_eq!(profile_stem("repro_table1"), "table1");
        assert_eq!(profile_stem("other_bin"), "other_bin");
        assert_eq!(profile_stem(""), "run");
    }

    #[test]
    fn default_ledger_path_strips_repro_prefix() {
        assert_eq!(
            default_ledger_path("repro_table1"),
            PathBuf::from("LEDGER_table1.jsonl")
        );
        assert_eq!(
            default_ledger_path("other_bin"),
            PathBuf::from("LEDGER_other_bin.jsonl")
        );
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(BenchArgs::parse_from(["--help"]).unwrap(), None);
        assert_eq!(BenchArgs::parse_from(["-h", "--junk"]).unwrap(), None);
    }

    #[test]
    fn usage_names_every_flag() {
        let u = usage("repro_table1");
        for flag in [
            "--quick",
            "--trace",
            "--metrics",
            "--ledger",
            "--no-ledger",
            "--bench-out",
            "--save-model",
            "--threads",
            "--precision",
            "--profile",
            "--span-tree",
            "--help",
        ] {
            assert!(u.contains(flag), "usage missing {flag}");
        }
        assert!(u.contains("LEDGER_table1.jsonl"), "{u}");
        assert!(u.contains("PROFILE_table1"), "{u}");
    }
}
