//! Runtime-scaling study: wall-clock of region-based detection vs the
//! conventional overlapping clip scan as the scanned layout area grows —
//! the mechanism behind Table 1's ~45× average speedup (the clip flow
//! re-examines every location ~9× through overlapping cores, and pays a
//! per-clip feature-extraction overhead on top).
//!
//! Usage: `cargo run -p rhsd-bench --release --bin repro_scaling --
//! [--quick] [--trace <path>] [--metrics <path>]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd_baselines::{Tcad18Config, Tcad18Detector};
use rhsd_bench::args::BenchArgs;
use rhsd_bench::pipeline::Effort;
use rhsd_core::{RegionDetector, RhsdConfig, RhsdNetwork};
use rhsd_data::clips::scan_windows;
use rhsd_data::{Benchmark, RegionConfig};
use rhsd_layout::synth::CaseId;
use rhsd_layout::Rect;
use rhsd_obs::Stopwatch;

/// Seed of the untrained scaling-study networks.
const SCALING_SEED: u64 = 17;

fn main() {
    let mut args = BenchArgs::parse("repro_scaling");
    let effort = args.effort();
    args.start_run(
        "repro_scaling",
        SCALING_SEED,
        "runtime scaling: region scan vs clip scan over growing layout area",
    );
    eprintln!("repro_scaling: effort = {effort:?}");
    let bench = Benchmark::demo(CaseId::Case3);
    let region_cfg = RegionConfig::demo();
    let mut rng = ChaCha8Rng::seed_from_u64(SCALING_SEED);
    let net = RhsdNetwork::new(RhsdConfig::demo(), &mut rng);
    let mut ours = RegionDetector::new(net, region_cfg);
    // Scaling networks are untrained by design; the saved model is still
    // loadable and scannable (useful for protocol-level smoke tests).
    args.save_model_if_requested(&mut ours);
    let mut tcad = Tcad18Detector::new(Tcad18Config::demo(), &mut rng);

    let sides: &[i64] = if effort == Effort::Quick {
        &[1280, 2560]
    } else {
        &[1280, 2560, 3840]
    };

    println!(
        "{:>10} {:>9} {:>12} {:>9} {:>12} {:>9}",
        "area(µm²)", "regions", "region(s)", "clips", "clip(s)", "speedup"
    );
    for &side in sides {
        let extent = Rect::new(
            bench.layout.extent().x0,
            bench.layout.extent().y0,
            bench.layout.extent().x0 + side,
            bench.layout.extent().y0 + side,
        );
        let timer = Stopwatch::start();
        let r = ours.scan(&bench, &extent);
        let t_region = timer.stop_into("scaling.region_scan");

        let clips = scan_windows(&extent, tcad.config().clip_px).len();
        let timer = Stopwatch::start();
        let _ = tcad.scan(&bench, &extent);
        let t_clip = timer.stop_into("scaling.clip_scan");

        println!(
            "{:>10.1} {:>9} {:>12.3} {:>9} {:>12.3} {:>8.1}×",
            (side as f64 / 1000.0).powi(2),
            r.regions,
            t_region,
            clips,
            t_clip,
            t_clip / t_region.max(1e-9),
        );
    }
    println!(
        "\nThe clip count grows ~9× faster than the region count (stride =\n\
         core = clip/3), so the gap widens with area — the paper's speedup\n\
         mechanism, reproduced without its GPU batching."
    );
    args.finish_run("ok");
}
