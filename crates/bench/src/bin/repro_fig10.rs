//! Regenerates **Figure 10** of the paper: the contribution of the
//! encoder–decoder structure, L2 regularisation and the refinement stage —
//! average accuracy (a) and average false alarms (b) for the variants
//! "w/o. ED", "w/o. L2", "w/o. Refine" and "Full".
//!
//! Usage: `cargo run -p rhsd-bench --release --bin repro_fig10 --
//! [--quick] [--trace <path>] [--metrics <path>] [--precision f32|bf16|int8]`

use rhsd_bench::args::BenchArgs;
use rhsd_bench::pipeline::{run_fig10, OURS_SEED};
use rhsd_bench::table::render_fig10;

fn main() {
    let mut args = BenchArgs::parse("repro_fig10");
    let effort = args.effort();
    args.start_run(
        "repro_fig10",
        OURS_SEED,
        "demo-scale Figure 10 ablations: w/o ED, w/o L2, w/o Refine, Full",
    );
    eprintln!("repro_fig10: effort = {effort:?} (pass --quick for a fast run)");
    eprintln!("training 4 ablation variants…");
    let timer = rhsd_obs::Stopwatch::start();
    let (reports, mut full) = run_fig10(effort, args.precision());
    eprintln!("total wall clock: {:.1}s", timer.secs());
    args.save_model_if_requested(&mut full);

    println!("\nFigure 10: ablation of ED / L2 / Refinement (synthetic reproduction)\n");
    println!("{}", render_fig10(&reports));

    // paper's stated deltas: ED +7% accuracy, L2 +2.2%, Refine −59.2% FA
    // and +5.88% accuracy
    let get = |name: &str| reports.iter().find(|r| r.name == name);
    if let (Some(full), Some(ed), Some(l2), Some(refine)) = (
        get("Full"),
        get("w/o. ED"),
        get("w/o. L2"),
        get("w/o. Refine"),
    ) {
        let f = full.average();
        println!("Deltas of the full model vs each ablation:");
        println!(
            "  ED contributes  {:+.2}% accuracy (paper: +7%)",
            f.accuracy_pct - ed.average().accuracy_pct
        );
        println!(
            "  L2 contributes  {:+.2}% accuracy (paper: +2.2%)",
            f.accuracy_pct - l2.average().accuracy_pct
        );
        let r = refine.average();
        println!(
            "  Refinement: {:+.2}% accuracy (paper: +5.88%), {:.1}% FA reduction (paper: −59.2%)",
            f.accuracy_pct - r.accuracy_pct,
            if r.false_alarms > 0 {
                100.0 * (1.0 - f.false_alarms as f64 / r.false_alarms as f64)
            } else {
                0.0
            }
        );
    }

    let json = serde_json::json!(reports
        .iter()
        .map(|r| (r.name.clone(), r.rows.clone()))
        .collect::<Vec<_>>());
    let pretty = serde_json::to_string_pretty(&json)
        .unwrap_or_else(|e| rhsd_bench::fail("serialise fig10 results", e));
    std::fs::write("fig10_results.json", pretty)
        .unwrap_or_else(|e| rhsd_bench::fail("write fig10_results.json", e));
    args.note_artifact("fig10_results.json");

    args.finish_run("ok");
}
