//! Regenerates **Figure 9** of the paper: side-by-side visualisations of
//! (a) ground truth, (b) the TCAD'18 clip-based detector's output and
//! (c) our region-based detector's output on one test region per case.
//!
//! Usage: `cargo run -p rhsd-bench --release --bin repro_fig9 --
//! [--quick] [--trace <path>] [--metrics <path>]`
//!
//! Writes `fig9_<case>_{truth,tcad18,ours}.svg` files into the working
//! directory.

use rhsd_baselines::LayoutClip;
use rhsd_bench::args::BenchArgs;
use rhsd_bench::pipeline::{
    build_benchmarks, evaluate_tcad18, merged_train_regions, ours_config, train_region_network,
    train_tcad18, Effort, OURS_SEED,
};
use rhsd_bench::viz::{render_svg, viz_counts};
use rhsd_data::RegionConfig;

fn main() {
    let mut args = BenchArgs::parse("repro_fig9");
    let effort = args.effort();
    args.start_run(
        "repro_fig9",
        OURS_SEED,
        "demo-scale Figure 9 visualisations: truth vs TCAD'18 vs Ours",
    );
    eprintln!("repro_fig9: effort = {effort:?} (pass --quick for a fast run)");
    let benches = build_benchmarks();
    let region = RegionConfig::demo();
    let samples = merged_train_regions(&benches, &region, effort == Effort::Full);

    eprintln!("training ours + TCAD'18…");
    let (mut ours, _training) = train_region_network(ours_config(), &samples, effort, OURS_SEED);
    args.save_model_if_requested(&mut ours);
    let mut tcad = train_tcad18(&benches, effort);

    for bench in &benches {
        // pick the test region with the most ground-truth hotspots
        let regions = rhsd_data::test_regions(bench, &region);
        let Some(best) = regions.iter().max_by_key(|r| r.gt_clips.len()) else {
            continue;
        };
        let window = best.window;
        let hotspots = bench.hotspots_in(&window);

        // ground truth: draw GT clips as perfect detections
        let truth: Vec<LayoutClip> = hotspots
            .iter()
            .map(|p| LayoutClip {
                clip: rhsd_layout::Rect::centered(p.x, p.y, region.clip_nm(), region.clip_nm()),
                score: 1.0,
            })
            .collect();

        // ours: region detection mapped to nm
        let (dets, _) = ours.detect_region(best);
        let ours_clips: Vec<LayoutClip> = dets
            .iter()
            .map(|d| LayoutClip {
                clip: d.bbox.to_rect(&best.spec),
                score: d.score,
            })
            .collect();

        // TCAD'18: scan restricted to this window
        let (_, all_marked) = evaluate_tcad18(&mut tcad, bench);
        let tcad_clips: Vec<LayoutClip> = all_marked
            .iter()
            .filter(|c| window.intersects(&c.clip))
            .copied()
            .collect();

        let px_per_nm = 0.4;
        for (tag, clips) in [
            ("truth", &truth),
            ("tcad18", &tcad_clips),
            ("ours", &ours_clips),
        ] {
            let svg = render_svg(&bench.layout, &window, clips, &hotspots, px_per_nm);
            let name = format!("fig9_{}_{tag}.svg", bench.id.name().to_lowercase());
            std::fs::write(&name, svg).unwrap_or_else(|e| rhsd_bench::fail(&name, e));
            args.note_artifact(&name);
            let c = viz_counts(clips, &hotspots);
            println!(
                "{name}: detected {}, missed {}, false alarms {}",
                c.detected, c.missed, c.false_alarms
            );
        }
    }
    eprintln!("done — open the fig9_*.svg files to compare detectors.");
    args.finish_run("ok");
}
