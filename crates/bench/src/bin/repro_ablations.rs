//! Extension ablations beyond Figure 10: evaluation-time studies on a
//! single trained model —
//!
//! 1. **h-NMS vs conventional NMS** (the Algorithm 1 / Fig. 5 design
//!    choice): same weights, different suppression, measured accuracy/FA.
//! 2. **Operating-curve sweep** (LithoROC-style): accuracy and false
//!    alarms across score thresholds, with the best operating point.
//!
//! Usage: `cargo run -p rhsd-bench --release --bin repro_ablations --
//! [--quick] [--trace <path>] [--metrics <path>]`

use rhsd_bench::args::BenchArgs;
use rhsd_bench::pipeline::{
    build_benchmarks, merged_train_regions, ours_config, train_region_network, Effort, OURS_SEED,
};
use rhsd_core::roc::{
    best_operating_point, default_thresholds, sweep_thresholds, RegionDetections,
};
use rhsd_core::Evaluation;
use rhsd_data::{test_regions, RegionConfig};

fn main() {
    let mut args = BenchArgs::parse("repro_ablations");
    let effort = args.effort();
    args.start_run(
        "repro_ablations",
        OURS_SEED,
        "eval-time ablations: h-NMS vs NMS, score-threshold operating curve",
    );
    eprintln!("repro_ablations: effort = {effort:?}");
    let benches = build_benchmarks();
    let region = RegionConfig::demo();
    let samples = merged_train_regions(&benches, &region, effort == Effort::Full);
    eprintln!("training one full model…");
    let (mut det, _training) = train_region_network(ours_config(), &samples, effort, OURS_SEED);
    args.save_model_if_requested(&mut det);

    // --- 1. h-NMS vs conventional NMS at evaluation time.
    println!("\n== h-NMS (Algorithm 1) vs conventional NMS, same weights ==");
    println!("{:>16} {:>12} {:>8}", "suppression", "accuracy(%)", "FA");
    for (label, use_hnms) in [("hotspot NMS", true), ("conventional", false)] {
        det.network_mut().set_use_hnms(use_hnms);
        let mut total = Evaluation::default();
        for b in &benches {
            total.merge(&det.scan_test_half(b).evaluation);
        }
        println!(
            "{:>16} {:>12.2} {:>8}",
            label,
            100.0 * total.accuracy(),
            total.false_alarms
        );
    }
    det.network_mut().set_use_hnms(true);

    // --- 2. Threshold sweep (operating curve).
    println!("\n== Operating curve (score-threshold sweep over all cases) ==");
    // collect raw detections at a permissive threshold
    det.network_mut().set_score_threshold(0.05);
    let mut raw: Vec<RegionDetections> = Vec::new();
    for b in &benches {
        for r in test_regions(b, &region) {
            let (dets, _) = det.detect_region(&r);
            raw.push((dets, r.gt_centers.clone()));
        }
    }
    let points = sweep_thresholds(&raw, &default_thresholds());
    println!("{:>10} {:>12} {:>8}", "threshold", "accuracy(%)", "FA");
    for p in points.iter().step_by(2) {
        println!(
            "{:>10.2} {:>12.2} {:>8}",
            p.threshold,
            100.0 * p.accuracy,
            p.false_alarms
        );
    }
    if let Some(best) = best_operating_point(&points) {
        println!(
            "\nbest operating point: threshold {:.2} → {:.2}% accuracy, {} FA",
            best.threshold,
            100.0 * best.accuracy,
            best.false_alarms
        );
    }

    let json = serde_json::to_string_pretty(&points)
        .unwrap_or_else(|e| rhsd_bench::fail("serialise sweep", e));
    std::fs::write("ablation_roc.json", json)
        .unwrap_or_else(|e| rhsd_bench::fail("write ablation_roc.json", e));
    args.note_artifact("ablation_roc.json");
    args.finish_run("ok");
}
