//! Regenerates **Table 1** of the paper: accuracy, false-alarm count and
//! detection runtime of TCAD'18, Faster R-CNN, SSD and Ours on the three
//! evaluated benchmark cases, plus Average and Ratio rows.
//!
//! Usage: `cargo run -p rhsd-bench --release --bin repro_table1 --
//! [--quick] [--trace <path>] [--metrics <path>]`
//!
//! The run is deterministic (all seeds fixed); results are printed to
//! stdout and written as JSON next to the binary's working directory
//! (`table1_results.json` plus the machine-readable `BENCH_table1.json`).

use rhsd_bench::args::BenchArgs;
use rhsd_bench::pipeline::{run_table1, write_bench_json};
use rhsd_bench::table::render_table1;

fn main() {
    let args = BenchArgs::parse("repro_table1");
    let effort = args.effort();
    eprintln!("repro_table1: effort = {effort:?} (pass --quick for a fast run)");
    eprintln!("building benchmarks, training 4 detectors, scanning test halves…");
    let timer = rhsd_obs::Stopwatch::start();
    let reports = run_table1(effort);
    eprintln!("total wall clock: {:.1}s", timer.secs());

    println!("\nTable 1: Comparison with State-of-the-art (synthetic reproduction)\n");
    println!("{}", render_table1(&reports));

    // headline claims relative to TCAD'18 (paper: +6.14% accuracy, 45×
    // speedup, ~200 fewer false alarms)
    if let (Some(base), Some(ours)) = (
        reports.iter().find(|r| r.name == "TCAD'18"),
        reports.iter().find(|r| r.name == "Ours"),
    ) {
        let b = base.average();
        let o = ours.average();
        println!("Headline vs TCAD'18:");
        println!(
            "  accuracy: {:+.2}% (paper: +6.14%)",
            o.accuracy_pct - b.accuracy_pct
        );
        println!(
            "  false alarms: {:+} (paper: ≈ −190)",
            o.false_alarms as i64 - b.false_alarms as i64
        );
        if o.seconds > 0.0 {
            println!(
                "  speedup: {:.1}× (paper: ≈ 42× on GPU hardware)",
                b.seconds / o.seconds
            );
        }
    }

    let json = serde_json::json!(reports
        .iter()
        .map(|r| (r.name.clone(), r.rows.clone()))
        .collect::<Vec<_>>());
    let pretty = serde_json::to_string_pretty(&json)
        .unwrap_or_else(|e| rhsd_bench::fail("serialise table1 results", e));
    std::fs::write("table1_results.json", pretty)
        .unwrap_or_else(|e| rhsd_bench::fail("write table1_results.json", e));
    eprintln!("wrote table1_results.json");

    write_bench_json("BENCH_table1.json", "repro_table1", args.quick, &reports)
        .unwrap_or_else(|e| rhsd_bench::fail("write BENCH_table1.json", e));
    eprintln!("wrote BENCH_table1.json");

    args.export_obs();
}
