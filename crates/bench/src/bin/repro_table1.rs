//! Regenerates **Table 1** of the paper: accuracy, false-alarm count and
//! detection runtime of TCAD'18, Faster R-CNN, SSD and Ours on the three
//! evaluated benchmark cases, plus Average and Ratio rows.
//!
//! Usage: `cargo run -p rhsd-bench --release --bin repro_table1 --
//! [--quick] [--trace <path>] [--metrics <path>] [--ledger <path>]
//! [--bench-out <path>] [--precision f32|bf16|int8]`
//!
//! The run is deterministic (all seeds fixed). Results are printed to
//! stdout; the machine-readable benchmark record lands in
//! `BENCH_table1.json` (override with `--bench-out`) — the input of
//! `cargo xtask bench-diff` — and the full run ledger in
//! `LEDGER_table1.jsonl` unless `--no-ledger` is given.

use std::path::PathBuf;

use rhsd_bench::args::BenchArgs;
use rhsd_bench::pipeline::{run_table1, write_bench_json, OURS_SEED};
use rhsd_bench::table::render_table1;

fn main() {
    let mut args = BenchArgs::parse("repro_table1");
    let effort = args.effort();
    args.start_run(
        "repro_table1",
        OURS_SEED,
        "demo-scale Table 1: TCAD'18, Faster R-CNN, SSD, Ours on Case2/3/4",
    );
    eprintln!("repro_table1: effort = {effort:?} (pass --quick for a fast run)");
    eprintln!("building benchmarks, training 4 detectors, scanning test halves…");
    let timer = rhsd_obs::Stopwatch::start();
    let (reports, mut ours) = run_table1(effort, args.precision());
    eprintln!("total wall clock: {:.1}s", timer.secs());
    args.save_model_if_requested(&mut ours);

    println!("\nTable 1: Comparison with State-of-the-art (synthetic reproduction)\n");
    println!("{}", render_table1(&reports));

    // headline claims relative to TCAD'18 (paper: +6.14% accuracy, 45×
    // speedup, ~200 fewer false alarms)
    if let (Some(base), Some(ours)) = (
        reports.iter().find(|r| r.name == "TCAD'18"),
        reports.iter().find(|r| r.name == "Ours"),
    ) {
        let b = base.average();
        let o = ours.average();
        println!("Headline vs TCAD'18:");
        println!(
            "  accuracy: {:+.2}% (paper: +6.14%)",
            o.accuracy_pct - b.accuracy_pct
        );
        println!(
            "  false alarms: {:+} (paper: ≈ −190)",
            o.false_alarms as i64 - b.false_alarms as i64
        );
        if o.seconds > 0.0 {
            println!(
                "  speedup: {:.1}× (paper: ≈ 42× on GPU hardware)",
                b.seconds / o.seconds
            );
        }
    }

    let bench_out = args
        .bench_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_table1.json"));
    write_bench_json(
        &bench_out,
        "repro_table1",
        args.quick,
        OURS_SEED,
        args.precision(),
        &reports,
    )
    .unwrap_or_else(|e| rhsd_bench::fail("write bench record", e));
    args.note_artifact(bench_out);

    args.finish_run("ok");
}
