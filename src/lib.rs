//! # rhsd — Faster Region-based Hotspot Detection
//!
//! A full-system Rust reproduction of *"Faster Region-based Hotspot
//! Detection"* (Chen, Zhong, Yang, Geng, Zeng, Yu — DAC 2019): an
//! end-to-end neural framework that finds **multiple** lithography
//! hotspots in a large layout region with a single feed-forward pass,
//! plus every substrate the paper depends on, implemented from scratch:
//!
//! | Crate | Role |
//! |---|---|
//! | [`tensor`] (`rhsd-tensor`) | dense `f32` tensor math: conv/deconv/pool/RoI-pool with analytic gradients |
//! | [`nn`] (`rhsd-nn`) | CNN layer framework, inception modules, losses, SGD |
//! | [`layout`] (`rhsd-layout`) | geometry, layout database, rasterisation, synthetic EUV benchmarks |
//! | [`litho`] (`rhsd-litho`) | Gaussian aerial-image + threshold-resist process-window oracle |
//! | [`data`] (`rhsd-data`) | litho-labelled benchmark cases, region/clip datasets |
//! | [`core`] (`rhsd-core`) | **the paper's contribution**: extractor, clip proposal network, h-NMS, refinement, C&R loss |
//! | [`baselines`] (`rhsd-baselines`) | TCAD'18 clip-based detector, Faster R-CNN / SSD configuration ports |
//! | [`serve`] (`rhsd-serve`) | long-lived batched scan server over a saved model (length-prefixed JSON on TCP) |
//!
//! # Quickstart
//!
//! ```no_run
//! use rand::SeedableRng;
//! use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
//! use rhsd::data::{train_regions, Benchmark, RegionConfig};
//! use rhsd::layout::synth::CaseId;
//!
//! // 1. build a litho-labelled benchmark (synthetic ICCAD-2016 analogue)
//! let bench = Benchmark::demo(CaseId::Case2);
//! // 2. train the region-based detector on the training half
//! let regions = train_regions(&bench, &RegionConfig::demo());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut net = RhsdNetwork::new(RhsdConfig::demo(), &mut rng);
//! rhsd::core::train(&mut net, &regions, &TrainConfig::demo());
//! // 3. scan the unseen test half
//! let mut detector = RegionDetector::new(net, RegionConfig::demo());
//! let result = detector.scan_test_half(&bench);
//! println!("{}", result.evaluation);
//! ```

pub use rhsd_baselines as baselines;
pub use rhsd_core as core;
pub use rhsd_data as data;
pub use rhsd_layout as layout;
pub use rhsd_litho as litho;
pub use rhsd_nn as nn;
pub use rhsd_obs as obs;
pub use rhsd_par as par;
pub use rhsd_serve as serve;
pub use rhsd_tensor as tensor;
