//! `rhsd` — command-line front end for the region-based hotspot
//! detection stack.
//!
//! ```text
//! rhsd gen    --case <1|2|3|4> [--full] --out <layout.rlf>
//! rhsd label  --layout <layout.rlf> --out <defects.json>
//! rhsd train  [--case <2|3|4>]... [--epochs N] [--no-ed|--no-l2|--no-refine] --out <model.json>
//! rhsd detect --model <model.json> --layout <layout.rlf> --out <detections.json>
//! rhsd eval   --model <model.json> [--case <2|3|4>]...
//! ```
//!
//! All commands are deterministic (fixed seeds).

use std::collections::HashMap;
use std::process::ExitCode;

use rand::SeedableRng;
use rhsd::core::persist::{load_from_path, save_to_path};
use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{train_regions, Benchmark, RegionConfig, NM_PER_PX};
use rhsd::layout::io::{read_rlf, write_rlf};
use rhsd::layout::synth::{CaseId, CaseSpec};
use rhsd::layout::{Layout, Rect, METAL1};
use rhsd::litho::{label_layout, ProcessWindow};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = parse_opts(&args[1..]);
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "label" => cmd_label(&opts),
        "train" => cmd_train(&opts),
        "detect" => cmd_detect(&opts),
        "drc" => cmd_drc(&opts),
        "eval" => cmd_eval(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rhsd — faster region-based hotspot detection (DAC 2019 reproduction)

USAGE:
  rhsd gen    --case <1|2|3|4> [--full] --out <layout.rlf>
  rhsd label  --layout <layout.rlf> --out <defects.json>
  rhsd train  [--case <2|3|4>]... [--epochs N] [--no-ed] [--no-l2] [--no-refine] --out <model.json>
  rhsd detect --model <model.json> --layout <layout.rlf> --out <detections.json>
  rhsd drc    --layout <layout.rlf> [--min-width N] [--min-space N]
  rhsd eval   --model <model.json> [--case <2|3|4>]...";

/// Parses `--key value` pairs and bare `--flag`s; repeated keys collect.
fn parse_opts(args: &[String]) -> HashMap<String, Vec<String>> {
    let mut out: HashMap<String, Vec<String>> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let value = args.get(i + 1);
            match value {
                Some(v) if !v.starts_with("--") => {
                    out.entry(key.to_owned()).or_default().push(v.clone());
                    i += 2;
                }
                _ => {
                    out.entry(key.to_owned()).or_default().push(String::new());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn one<'a>(opts: &'a HashMap<String, Vec<String>>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .and_then(|v| v.first())
        .map(String::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("missing --{key} <value>"))
}

fn flag(opts: &HashMap<String, Vec<String>>, key: &str) -> bool {
    opts.contains_key(key)
}

fn parse_case(s: &str) -> Result<CaseId, String> {
    match s {
        "1" | "case1" | "Case1" => Ok(CaseId::Case1),
        "2" | "case2" | "Case2" => Ok(CaseId::Case2),
        "3" | "case3" | "Case3" => Ok(CaseId::Case3),
        "4" | "case4" | "Case4" => Ok(CaseId::Case4),
        other => Err(format!("unknown case '{other}' (use 1–4)")),
    }
}

fn cases_or_default(opts: &HashMap<String, Vec<String>>) -> Result<Vec<CaseId>, String> {
    match opts.get("case") {
        Some(v) if !v.is_empty() => v.iter().map(|s| parse_case(s)).collect(),
        _ => Ok(CaseId::EVALUATED.to_vec()),
    }
}

fn cmd_gen(opts: &HashMap<String, Vec<String>>) -> Result<(), String> {
    let case = parse_case(one(opts, "case")?)?;
    let out = one(opts, "out")?;
    let spec = if flag(opts, "full") {
        CaseSpec::full(case)
    } else {
        CaseSpec::demo(case)
    };
    let (layout, stress) = spec.build();
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    write_rlf(&layout, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} shapes, {} stress sites",
        layout.shape_count(METAL1),
        stress.tight_gaps.len() + stress.necks.len()
    );
    Ok(())
}

fn load_layout(path: &str) -> Result<Layout, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    read_rlf(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn cmd_label(opts: &HashMap<String, Vec<String>>) -> Result<(), String> {
    let layout = load_layout(one(opts, "layout")?)?;
    let out = one(opts, "out")?;
    let pw = ProcessWindow::euv_default();
    let defects = label_layout(&layout, METAL1, &pw, 2560, NM_PER_PX);
    let json = serde_json::to_string_pretty(&defects).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| e.to_string())?;
    println!("wrote {out}: {} defects", defects.len());
    Ok(())
}

fn cmd_train(opts: &HashMap<String, Vec<String>>) -> Result<(), String> {
    let out = one(opts, "out")?;
    let cases = cases_or_default(opts)?;
    let epochs: usize = opts
        .get("epochs")
        .and_then(|v| v.first())
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let mut cfg = RhsdConfig::demo();
    cfg.use_encoder_decoder = !flag(opts, "no-ed");
    cfg.use_l2 = !flag(opts, "no-l2");
    cfg.use_refinement = !flag(opts, "no-refine");

    let region = RegionConfig::demo();
    let mut samples = Vec::new();
    for &c in &cases {
        println!("building {c} (layout + litho labels)…");
        let bench = Benchmark::demo(c);
        samples.extend(train_regions(&bench, &region));
    }
    println!("training on {} regions for {epochs} epochs…", samples.len());
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2019);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let mut tc = TrainConfig::demo();
    tc.epochs = epochs;
    for h in rhsd::core::train(&mut net, &samples, &tc) {
        println!("  epoch {:>2}: mean loss {:.4}", h.epoch, h.mean_loss);
    }
    save_to_path(&mut net, out).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_detect(opts: &HashMap<String, Vec<String>>) -> Result<(), String> {
    let net = load_from_path(one(opts, "model")?).map_err(|e| e.to_string())?;
    let layout = load_layout(one(opts, "layout")?)?;
    let out = one(opts, "out")?;

    // Wrap the raw layout in a label-free benchmark shell for scanning.
    let extent = layout.extent();
    let bench = Benchmark {
        id: CaseId::Case1,
        layout,
        defects: Vec::new(),
        train_extent: Rect::new(extent.x0, extent.y0, extent.x0, extent.y1),
        test_extent: extent,
    };
    let mut det = RegionDetector::new(net, RegionConfig::demo());
    let result = det.scan(&bench, &extent);
    #[derive(serde::Serialize)]
    struct Out {
        clip: [i64; 4],
        score: f32,
    }
    let rows: Vec<Out> = result
        .detections
        .iter()
        .map(|d| Out {
            clip: [d.clip.x0, d.clip.y0, d.clip.x1, d.clip.y1],
            score: d.score,
        })
        .collect();
    std::fs::write(
        out,
        serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} detections over {} regions",
        rows.len(),
        result.regions
    );
    Ok(())
}

fn cmd_drc(opts: &HashMap<String, Vec<String>>) -> Result<(), String> {
    let layout = load_layout(one(opts, "layout")?)?;
    let num = |key: &str, default: i64| -> i64 {
        opts.get(key)
            .and_then(|v| v.first())
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let min_width = num("min-width", 40);
    let min_space = num("min-space", 50);
    let violations = rhsd::layout::drc::check(&layout, METAL1, min_width, min_space);
    for v in &violations {
        println!("{v}");
    }
    println!(
        "{} violations (min width {min_width} nm, min spacing {min_space} nm)",
        violations.len()
    );
    Ok(())
}

fn cmd_eval(opts: &HashMap<String, Vec<String>>) -> Result<(), String> {
    let net = load_from_path(one(opts, "model")?).map_err(|e| e.to_string())?;
    let cases = cases_or_default(opts)?;
    let mut det = RegionDetector::new(net, RegionConfig::demo());
    for &c in &cases {
        let bench = Benchmark::demo(c);
        let timer = rhsd::obs::Stopwatch::start();
        let result = det.scan_test_half(&bench);
        println!(
            "{c}: {} ({:.2}s, {} regions)",
            result.evaluation,
            timer.secs(),
            result.regions
        );
    }
    Ok(())
}
