//! End-to-end integration: layout synthesis → litho labelling → region
//! dataset → training → detection → metrics, across every crate.

use std::sync::OnceLock;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{test_regions, train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;

fn bench() -> &'static Benchmark {
    static BENCH: OnceLock<Benchmark> = OnceLock::new();
    BENCH.get_or_init(|| Benchmark::demo(CaseId::Case3))
}

fn tiny_net_config() -> RhsdConfig {
    let mut cfg = RhsdConfig::tiny();
    cfg.region_px = RegionConfig::demo().region_px;
    cfg.clip_px = RegionConfig::demo().clip_px;
    cfg
}

#[test]
fn pipeline_produces_consistent_ground_truth() {
    let b = bench();
    let cfg = RegionConfig::demo();
    let train = train_regions(b, &cfg);
    let test = test_regions(b, &cfg);
    assert!(!train.is_empty() && !test.is_empty());

    // every ground-truth clip corresponds to a litho defect in its window
    for r in train.iter().chain(test.iter()) {
        assert_eq!(r.gt_clips.len(), b.hotspots_in(&r.window).len());
    }
}

#[test]
fn training_step_and_detection_run_through_all_crates() {
    let b = bench();
    let cfg = RegionConfig::demo();
    let regions = train_regions(b, &cfg);
    let with_hotspots: Vec<_> = regions
        .iter()
        .filter(|r| !r.gt_clips.is_empty())
        .take(2)
        .cloned()
        .collect();
    assert!(!with_hotspots.is_empty(), "need hotspot regions to train");

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut net = RhsdNetwork::new(tiny_net_config(), &mut rng);
    let mut tc = TrainConfig::tiny();
    tc.epochs = 1;
    let history = rhsd::core::train(&mut net, &with_hotspots, &tc);
    assert_eq!(history.len(), 1);
    assert!(history[0].mean_loss.is_finite());

    let mut det = RegionDetector::new(net, cfg);
    let (dets, eval) = det.detect_region(&with_hotspots[0]);
    assert_eq!(eval.ground_truth, with_hotspots[0].gt_clips.len());
    for d in &dets {
        assert!(d.score.is_finite());
    }
}

#[test]
fn scan_metrics_aggregate_over_regions() {
    let b = bench();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let net = RhsdNetwork::new(tiny_net_config(), &mut rng);
    let mut det = RegionDetector::new(net, RegionConfig::demo());
    let result = det.scan_test_half(b);
    // ground truth equals the sum over tiled regions
    let expected: usize = test_regions(b, &RegionConfig::demo())
        .iter()
        .map(|r| r.gt_clips.len())
        .sum();
    assert_eq!(result.evaluation.ground_truth, expected);
    // every detection originates from a region tiling the test half;
    // the clip itself is an unclamped regression output (an untrained
    // network may place it far outside its region)
    for d in &result.detections {
        assert!(b.test_extent.contains_rect(&d.region));
    }
}

#[test]
fn detection_improves_with_oracle_weights() {
    // Sanity on the metric plumbing: a "perfect" detector built from the
    // ground truth scores 100% accuracy and 0 false alarms.
    let b = bench();
    let cfg = RegionConfig::demo();
    let regions = test_regions(b, &cfg);
    let mut total = rhsd::core::Evaluation::default();
    for r in &regions {
        let dets: Vec<rhsd::core::Detection> = r
            .gt_clips
            .iter()
            .map(|c| rhsd::core::Detection {
                bbox: *c,
                score: 1.0,
            })
            .collect();
        total.merge(&rhsd::core::evaluate_region(&dets, &r.gt_centers));
    }
    assert_eq!(total.accuracy(), 1.0);
    assert_eq!(total.false_alarms, 0);
}
