//! Model persistence across the full stack: a trained detector survives a
//! save/load roundtrip with identical behaviour on real benchmark data.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd::core::persist::{load_from_reader, save_to_writer};
use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;

#[test]
fn trained_model_roundtrips_through_json() {
    let bench = Benchmark::demo(CaseId::Case2);
    let region_cfg = RegionConfig::demo();
    let regions: Vec<_> = train_regions(&bench, &region_cfg)
        .into_iter()
        .filter(|r| !r.gt_clips.is_empty())
        .take(2)
        .collect();

    let mut cfg = RhsdConfig::tiny();
    cfg.region_px = region_cfg.region_px;
    cfg.clip_px = region_cfg.clip_px;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let mut tc = TrainConfig::tiny();
    tc.epochs = 1;
    rhsd::core::train(&mut net, &regions, &tc);

    let mut buf = Vec::new();
    save_to_writer(&mut net, &mut buf).expect("save");
    let restored = load_from_reader(buf.as_slice()).expect("load");

    let mut a = RegionDetector::new(net, region_cfg);
    let mut b = RegionDetector::new(restored, region_cfg);
    for r in &regions {
        let (da, ea) = a.detect_region(r);
        let (db, eb) = b.detect_region(r);
        assert_eq!(ea, eb, "metrics must match after restore");
        assert_eq!(da.len(), db.len());
        for (x, y) in da.iter().zip(db.iter()) {
            assert!((x.score - y.score).abs() < 1e-6);
            assert!((x.bbox.cx - y.bbox.cx).abs() < 1e-4);
        }
    }
}
