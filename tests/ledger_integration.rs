//! End-to-end run-ledger test: a demo-scale train → evaluate run with the
//! global ledger open must leave a JSONL file where every line is valid
//! JSON, the stream starts with a `run_start` manifest (seed + config),
//! epoch telemetry arrives in order, eval rows carry the detector name,
//! and the stream ends with `run_end`.
//!
//! Kept as a single `#[test]` in its own binary: the obs registry and the
//! global ledger sink are process-global, so this test must not share a
//! process with other tests that open ledgers or reset the registry.

use rand::SeedableRng;
use rhsd::baselines::CaseResult;
use rhsd::core::{train, RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;
use rhsd::obs;
use rhsd::obs::json::Value;
use rhsd::obs::ledger::{Event, Manifest};

#[test]
fn demo_run_leaves_a_valid_ordered_ledger() {
    obs::reset();
    obs::set_enabled(true);

    let path = std::env::temp_dir().join(format!("rhsd_ledger_it_{}.jsonl", std::process::id()));
    let manifest = Manifest {
        bin: "ledger_integration".to_owned(),
        seed: 5,
        config: "tiny demo config".to_owned(),
        effort: "Quick".to_owned(),
        host: obs::ledger::host_string(),
        version: env!("CARGO_PKG_VERSION").to_owned(),
        threads: rhsd::par::threads() as u64,
        precision: "f32".to_owned(),
        isa: rhsd::tensor::ops::kernels::isa_name().to_owned(),
    };
    obs::ledger::open(&path, manifest).expect("open global ledger");
    assert!(obs::ledger::active());

    // Train two epochs on a handful of regions — `train` emits one
    // `epoch` event per epoch — then evaluate and mirror the row.
    let bench = Benchmark::demo(CaseId::Case2);
    let region = RegionConfig::demo();
    let mut samples = train_regions(&bench, &region);
    samples.truncate(4);
    let mut cfg = RhsdConfig::tiny();
    cfg.region_px = region.region_px;
    cfg.clip_px = region.clip_px;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let history = train(&mut net, &samples, &TrainConfig::tiny());
    assert_eq!(history.len(), 2);

    let mut detector = RegionDetector::new(net, region);
    let result = detector.scan_test_half(&bench);
    let row = CaseResult::new(bench.id.name(), &result.evaluation, 0.25);
    row.emit_ledger("Ours");

    // A custom event through the global sink, then close.
    obs::ledger::emit(&Event::Eval {
        detector: "control".to_owned(),
        case: "Case2".to_owned(),
        accuracy_pct: 100.0,
        false_alarms: 0,
        seconds: 0.125,
    });
    let closed = obs::ledger::close("ok").expect("close returns the path");
    assert_eq!(closed, path);
    assert!(!obs::ledger::active());
    obs::set_enabled(false);
    obs::reset();

    // --- Re-read the file: every line is one valid JSON object.
    let text = std::fs::read_to_string(&path).expect("ledger file exists");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 5,
        "expected run_start + 2 epochs + evals + run_end, got {} lines",
        lines.len()
    );
    let mut parsed: Vec<Value> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        obs::json::validate(line).unwrap_or_else(|pos| {
            panic!("line {} invalid at byte {pos}: {line}", i + 1);
        });
        parsed.push(obs::json::parse(line).expect("validated line parses"));
    }

    let field = |v: &Value, key: &str| -> String {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .unwrap_or_default()
    };

    // --- First line: the run_start manifest with seed and config.
    let first = &parsed[0];
    assert_eq!(field(first, "event"), "run_start");
    assert_eq!(first.get("seed").and_then(Value::as_u64), Some(5));
    assert_eq!(field(first, "config"), "tiny demo config");
    assert_eq!(field(first, "bin"), "ledger_integration");
    assert!(!field(first, "host").is_empty());
    assert!(!field(first, "version").is_empty());
    assert_eq!(field(first, "precision"), "f32");
    assert!(!field(first, "isa").is_empty());

    // --- Last line: run_end with "ok" status.
    let last = parsed.last().expect("nonempty");
    assert_eq!(field(last, "event"), "run_end");
    assert_eq!(field(last, "status"), "ok");
    assert!(last.get("wall_secs").and_then(Value::as_f64).is_some());

    // --- Sequence numbers are contiguous from 0; timestamps never run
    // backwards (the crash-readability contract: a prefix is meaningful).
    for (i, v) in parsed.iter().enumerate() {
        assert_eq!(
            v.get("seq").and_then(Value::as_u64),
            Some(i as u64),
            "line {} has wrong seq",
            i + 1
        );
    }
    let times: Vec<f64> = parsed
        .iter()
        .map(|v| v.get("t").and_then(Value::as_f64).unwrap_or(f64::NAN))
        .collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "timestamps must be monotonic: {times:?}"
    );

    // --- Epoch telemetry: one event per epoch, in order, with the
    // training-stats fields populated.
    let epochs: Vec<&Value> = parsed
        .iter()
        .filter(|v| field(v, "event") == "epoch")
        .collect();
    assert_eq!(epochs.len(), 2, "one epoch event per training epoch");
    for (i, e) in epochs.iter().enumerate() {
        assert_eq!(e.get("epoch").and_then(Value::as_u64), Some(i as u64));
        for key in [
            "mean_loss",
            "grad_norm",
            "lr",
            "pred_entropy",
            "label_entropy",
        ] {
            assert!(
                e.get(key).and_then(Value::as_f64).is_some(),
                "epoch event missing {key}"
            );
        }
        assert_eq!(e.get("samples").and_then(Value::as_u64), Some(4));
        // Per-layer dynamics rows ride along (telemetry samples step 0 of
        // every epoch at the default rate), each with the full stat set.
        let layers = e
            .get("layers")
            .and_then(Value::as_arr)
            .expect("epoch event carries a layers array");
        assert!(!layers.is_empty(), "default sampling collects layer rows");
        for l in layers {
            assert!(l.get("key").and_then(Value::as_str).is_some());
            for key in [
                "act_mean_abs",
                "dead_frac",
                "saturated_frac",
                "flow_grad_norm",
                "grad_norm",
                "update_ratio",
                "weight_norm",
            ] {
                assert!(
                    l.get(key).and_then(Value::as_f64).is_some(),
                    "layer row missing {key}"
                );
            }
        }
    }

    // --- Eval rows: the mirrored CaseResult and the control event.
    let evals: Vec<&Value> = parsed
        .iter()
        .filter(|v| field(v, "event") == "eval")
        .collect();
    assert!(evals.iter().any(|v| field(v, "detector") == "Ours"
        && field(v, "case") == "Case2"
        && v.get("seconds").and_then(Value::as_f64) == Some(0.25)));
    assert!(evals.iter().any(|v| field(v, "detector") == "control"
        && v.get("false_alarms").and_then(Value::as_u64) == Some(0)));

    // --- run_end carries counters and peak metrics from the registry.
    assert!(last.get("counters").is_some(), "run_end lists counters");
    assert!(last.get("peaks").is_some(), "run_end lists peak metrics");
}
