//! End-to-end serving tests: a real `Server` on an ephemeral loopback
//! port, real TCP clients, and the bit-identity pin the CI serve-smoke
//! leg relies on — a served scan's reply must equal, byte for byte, the
//! offline scan written through the same canonical serialiser.

use std::path::{Path, PathBuf};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd::core::{persist, Precision, RhsdConfig, RhsdNetwork};
use rhsd::layout::synth::CaseId;
use rhsd::serve::proto::{scan_response_json, Half};
use rhsd::serve::{offline_scan, Client, Request, ServeConfig, Server};

/// Saves a demo-geometry model (tiny channels, 128-px input) to a temp
/// file; serving does not require a *trained* model, only a loadable one.
fn saved_model(tag: &str) -> PathBuf {
    let mut cfg = RhsdConfig::tiny();
    cfg.region_px = 128;
    let mut rng = ChaCha8Rng::seed_from_u64(90);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let path =
        std::env::temp_dir().join(format!("rhsd_serve_it_{tag}_{}.json", std::process::id()));
    persist::save_to_path(&mut net, &path).expect("save model");
    path
}

fn start(model: &Path) -> Server {
    start_at(model, Precision::F32)
}

fn start_at(model: &Path, precision: Precision) -> Server {
    Server::start(&ServeConfig {
        model: model.to_path_buf(),
        port: 0,
        precision,
    })
    .expect("server must start on an ephemeral port")
}

#[test]
fn served_scan_is_bit_identical_to_offline_scan() {
    let model = saved_model("bitident");
    let expected = {
        let result = offline_scan(&model, CaseId::Case2, Half::Test, Precision::F32).unwrap();
        scan_response_json(CaseId::Case2, Half::Test, &result)
    };
    assert!(
        expected.contains("\"detections\""),
        "reference body must be a scan reply: {expected}"
    );

    let server = start(&model);
    let mut client = Client::connect(server.addr()).unwrap();
    let served = client.scan(CaseId::Case2, Half::Test).unwrap();
    assert_eq!(
        served, expected,
        "served reply must equal offline reference"
    );

    // A rescan is served through warm caches and stays bit-identical.
    let again = client.scan(CaseId::Case2, Half::Test).unwrap();
    assert_eq!(again, expected);

    client.shutdown().unwrap();
    drop(client);
    let summary = server.wait();
    assert_eq!(summary.scan_requests, 2);
    assert!(summary.batches >= 1);
    assert_eq!(
        summary.batched_regions,
        summary.tile_hits + summary.tile_misses
    );
    assert!(summary.tile_hits > 0, "rescan must hit the tile cache");
    assert!(summary.stem_hits > 0, "rescan must hit the stem cache");
    std::fs::remove_file(&model).ok();
}

#[test]
fn concurrent_clients_all_get_exact_results() {
    let model = saved_model("concurrent");
    let cases = [CaseId::Case2, CaseId::Case3];
    let expected: Vec<String> = cases
        .iter()
        .map(|&c| {
            let r = offline_scan(&model, c, Half::Test, Precision::F32).unwrap();
            scan_response_json(c, Half::Test, &r)
        })
        .collect();

    let server = start(&model);
    let addr = server.addr();
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let case = cases[i % cases.len()];
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.scan(case, Half::Test).unwrap()
            })
        })
        .collect();
    for (i, c) in clients.into_iter().enumerate() {
        assert_eq!(
            c.join().unwrap(),
            expected[i % expected.len()],
            "client {i}"
        );
    }

    let mut control = Client::connect(addr).unwrap();
    let stats = control.stats().unwrap();
    let v = rhsd::obs::json::parse(&stats).unwrap();
    let field = |k: &str| v.get(k).and_then(rhsd::obs::json::Value::as_u64).unwrap();
    assert_eq!(field("scan_requests"), 4);
    assert!(field("batches") >= 1);
    assert!(field("batched_regions") > 0);
    control.shutdown().unwrap();
    drop(control);
    let summary = server.wait();
    assert_eq!(summary.requests, 6); // 4 scans + stats + shutdown
    std::fs::remove_file(&model).ok();
}

#[test]
fn int8_served_scan_matches_int8_offline_scan_and_reports_precision() {
    let model = saved_model("int8");
    let expected = {
        let result = offline_scan(&model, CaseId::Case2, Half::Test, Precision::Int8).unwrap();
        scan_response_json(CaseId::Case2, Half::Test, &result)
    };

    let server = start_at(&model, Precision::Int8);
    let mut client = Client::connect(server.addr()).unwrap();
    let served = client.scan(CaseId::Case2, Half::Test).unwrap();
    assert_eq!(
        served, expected,
        "int8 is integer-exact, so serving must still be bit-identical to offline"
    );

    // Stats and info report the active precision and a nonempty ISA tag.
    let stats = client.stats().unwrap();
    let v = rhsd::obs::json::parse(&stats).unwrap();
    let sfield = |k: &str| {
        v.get(k)
            .and_then(rhsd::obs::json::Value::as_str)
            .unwrap_or_default()
            .to_owned()
    };
    assert_eq!(sfield("precision"), "int8");
    assert!(!sfield("isa").is_empty(), "{stats}");

    client.shutdown().unwrap();
    drop(client);
    server.wait();
    std::fs::remove_file(&model).ok();
}

#[test]
fn protocol_errors_keep_the_connection_alive() {
    use rhsd::serve::proto::{read_frame, write_frame};

    let model = saved_model("errors");
    let server = start(&model);
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = std::io::BufWriter::new(stream);

    // Malformed JSON and a bad op each get a typed error reply...
    for bad in ["garbage", "{\"op\":\"launch\"}"] {
        write_frame(&mut writer, bad).unwrap();
        let reply = read_frame(&mut reader).unwrap().unwrap();
        assert!(reply.contains("\"op\":\"error\""), "{bad}: {reply}");
    }

    // ...and the connection still serves valid requests afterwards.
    write_frame(&mut writer, "{\"op\":\"ping\"}").unwrap();
    assert_eq!(
        read_frame(&mut reader).unwrap().unwrap(),
        "{\"op\":\"pong\"}"
    );

    let mut client = Client::connect(server.addr()).unwrap();
    client.request(&Request::Shutdown).unwrap();
    drop(client);
    drop(writer);
    drop(reader);
    server.wait();
    std::fs::remove_file(&model).ok();
}

#[test]
fn wrong_model_geometry_is_a_typed_startup_error() {
    let mut cfg = RhsdConfig::tiny(); // 64-px input: matches no scale
    cfg.region_px = 64;
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let path = std::env::temp_dir().join(format!("rhsd_serve_it_geom_{}.json", std::process::id()));
    persist::save_to_path(&mut net, &path).expect("save model");
    let err = match Server::start(&ServeConfig {
        model: path.clone(),
        port: 0,
        precision: Precision::F32,
    }) {
        Err(e) => e,
        Ok(_) => unreachable!("64-px model must not serve"),
    };
    let msg = err.to_string();
    assert!(msg.contains("64-px"), "{msg}");
    std::fs::remove_file(&path).ok();
}
