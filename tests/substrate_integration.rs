//! Cross-substrate invariants: layout ↔ litho ↔ data consistency.

use std::sync::OnceLock;

use rhsd::data::augment::{flip_region, Flip};
use rhsd::data::{clips, extract_region, train_regions, Benchmark, RegionConfig, NM_PER_PX};
use rhsd::layout::synth::CaseId;
use rhsd::layout::{Point, METAL1};
use rhsd::litho::DefectKind;

fn bench() -> &'static Benchmark {
    static BENCH: OnceLock<Benchmark> = OnceLock::new();
    BENCH.get_or_init(|| Benchmark::demo(CaseId::Case4))
}

#[test]
fn defects_lie_near_metal_geometry() {
    // Every litho defect must sit on or next to drawn metal: within one
    // pitch of some shape.
    let b = bench();
    for d in &b.defects {
        let probe = rhsd::layout::Rect::centered(d.location.x, d.location.y, 260, 260);
        assert!(
            !b.layout.query(METAL1, &probe).is_empty(),
            "defect {d:?} is floating in empty space"
        );
    }
}

#[test]
fn defects_have_both_failure_modes() {
    // Case4 stresses both gaps and necks, so both kinds should appear.
    let b = bench();
    let bridges = b
        .defects
        .iter()
        .filter(|d| d.kind == DefectKind::Bridge)
        .count();
    let pinches = b
        .defects
        .iter()
        .filter(|d| d.kind == DefectKind::Pinch)
        .count();
    assert!(bridges > 0, "expected bridge defects");
    assert!(pinches > 0, "expected pinch defects");
}

#[test]
fn region_raster_matches_layout_density() {
    let b = bench();
    let cfg = RegionConfig::demo();
    let origin = Point::new(b.layout.extent().x0, b.layout.extent().y0);
    let r = extract_region(b, origin, &cfg);
    let raster_density = r.image.mean() as f64;
    let layout_density = b.layout.density(METAL1, &r.window);
    assert!(
        (raster_density - layout_density).abs() < 0.01,
        "raster {raster_density} vs layout {layout_density}"
    );
}

#[test]
fn gt_clip_centres_are_defect_locations() {
    let b = bench();
    let cfg = RegionConfig::demo();
    for r in train_regions(b, &cfg) {
        for (clip, &(cx, cy)) in r.gt_clips.iter().zip(r.gt_centers.iter()) {
            // centre in nm:
            let x_nm = r.window.x0 + (cx as f64 * NM_PER_PX) as i64;
            let y_nm = r.window.y0 + (cy as f64 * NM_PER_PX) as i64;
            assert!(
                b.defects
                    .iter()
                    .any(|d| (d.location.x - x_nm).abs() <= 10
                        && (d.location.y - y_nm).abs() <= 10),
                "gt centre ({x_nm},{y_nm}) matches no defect"
            );
            // clip (unless clamped at the border) is centred on the centre
            if clip.w as usize == cfg.clip_px && clip.h as usize == cfg.clip_px {
                assert!((clip.cx - cx).abs() < 1e-3);
            }
        }
    }
}

#[test]
fn flip_augmentation_preserves_hotspot_count_and_content() {
    let b = bench();
    let cfg = RegionConfig::demo();
    let regions = train_regions(b, &cfg);
    let sample = regions
        .iter()
        .find(|r| !r.gt_clips.is_empty())
        .expect("hotspot region exists");
    for f in [Flip::Horizontal, Flip::Vertical] {
        let flipped = flip_region(sample, f);
        assert_eq!(flipped.gt_clips.len(), sample.gt_clips.len());
        assert!((flipped.image.sum() - sample.image.sum()).abs() < 1e-3);
        // double flip restores the original labels
        let back = flip_region(&flipped, f);
        for (a, bb) in back.gt_clips.iter().zip(sample.gt_clips.iter()) {
            assert!((a.cx - bb.cx).abs() < 1e-4);
            assert!((a.cy - bb.cy).abs() < 1e-4);
        }
    }
}

#[test]
fn clip_scan_covers_every_test_hotspot() {
    // The conventional scan grid must place every hotspot in some clip's
    // core — otherwise the baseline's accuracy ceiling is artificial.
    let b = bench();
    let clip_px = 32;
    let windows = clips::scan_windows(&b.test_extent, clip_px);
    let margin = (clip_px as f64 * NM_PER_PX) as i64;
    for h in b.test_hotspots() {
        // skip hotspots too close to the half's border to be coverable
        let interior = b.test_extent.inflated(-margin);
        if !interior.contains(h) {
            continue;
        }
        assert!(
            windows.iter().any(|w| w.core().contains(h)),
            "hotspot {h} not covered by any scan core"
        );
    }
}
