//! Training-dynamics telemetry and divergence-sentinel regression tests.
//!
//! The centrepiece re-creates the PR-6 learning-rate collapse: at demo
//! scale, `lr = 0.01` with momentum 0.9 and batch 4 drives the
//! refinement head into a bias-only prior predictor (label entropy ≈ 0,
//! refinement loss pinned at the class-prior entropy) that used to
//! surface only as 0%-accuracy rows at final eval. The sentinel must
//! catch it within the first three epochs, while the fixed quick
//! configuration (lr = 0.005, batch 2) trains with no sentinel events.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd::core::{
    train_checked, RhsdConfig, RhsdNetwork, SentinelConfig, TelemetryConfig, TrainConfig,
    TripReason,
};
use rhsd::data::{BBox, RegionSample};
use rhsd::layout::{RasterSpec, Rect};
use rhsd::obs;
use rhsd::obs::json::Value;
use rhsd::tensor::Tensor;
use rhsd_bench::pipeline::{
    build_benchmarks, merged_train_regions, ours_config, train_config, Effort,
};

/// The merged demo-scale training set (3 cases, no augmentation) — the
/// same regions the quick bench trains on.
fn quick_samples() -> Vec<RegionSample> {
    let benches = build_benchmarks();
    let region = rhsd::data::RegionConfig::demo();
    merged_train_regions(&benches, &region, false)
}

#[test]
fn lr001_collapse_trips_the_sentinel_within_three_epochs() {
    let samples = quick_samples();
    // The PR-6 configuration: demo schedule with the old 0.01 rate.
    let mut tc = TrainConfig::demo();
    tc.epochs = 3;
    tc.schedule.initial = 0.01;
    tc.sentinel = SentinelConfig::aborting();
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    let mut net = RhsdNetwork::new(ours_config(), &mut rng);
    let abort = train_checked(&mut net, &samples, &tc)
        .expect_err("the lr=0.01 collapse must trip the aborting sentinel");
    match &abort.reason {
        TripReason::BiasCollapse {
            epoch,
            label_entropy,
            ..
        } => {
            assert!(
                *epoch <= 2,
                "collapse must be caught within the first 3 epochs, tripped at {epoch}"
            );
            assert!(
                *label_entropy <= 0.1,
                "trip evidence: label entropy {label_entropy} should be ≈0"
            );
        }
        other => panic!("expected BiasCollapse, got {other:?}"),
    }
    // The abort carries the history up to and including the trip.
    assert_eq!(abort.history.len(), abort.reason.epoch() + 1);
}

#[test]
fn fixed_quick_config_trains_with_no_sentinel_events() {
    let samples = quick_samples();
    // The fixed configuration the quick bench runs (lr = 0.005, batch 2),
    // trimmed to 6 epochs to keep the test fast — comfortably past the
    // epochs where the collapse configuration trips.
    let mut tc = train_config(Effort::Quick);
    tc.epochs = 6;
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    let mut net = RhsdNetwork::new(ours_config(), &mut rng);
    let report = train_checked(&mut net, &samples, &tc).expect("clean run");
    assert_eq!(report.history.len(), 6);
    assert!(
        report.trips.is_empty(),
        "fixed config must train clean, got {:?}",
        report.trips
    );
    // Telemetry rode along: per-layer rows exist and the label histogram
    // is populated.
    let last = report.history.last().expect("history");
    assert!(!last.layers.is_empty());
    assert!(last.pred_hotspot + last.pred_non_hotspot > 0);
}

fn synthetic_samples(cfg: &RhsdConfig, n: usize) -> Vec<RegionSample> {
    let px = cfg.region_px;
    (0..n)
        .map(|i| {
            let cx = (px / 4 + (i * 13) % (px / 2)) as f32;
            let cy = (px / 4 + (i * 29) % (px / 2)) as f32;
            let image = Tensor::from_fn([1, px, px], |c| {
                let dx = c[2] as f32 - cx;
                let dy = c[1] as f32 - cy;
                if dx * dx + dy * dy < 36.0 {
                    1.0
                } else {
                    0.0
                }
            });
            let window = Rect::new(0, 0, (px * 10) as i64, (px * 10) as i64);
            RegionSample {
                image,
                window,
                spec: RasterSpec::new(window, px, px),
                gt_clips: vec![BBox::new(cx, cy, cfg.clip_px as f32, cfg.clip_px as f32)],
                gt_centers: vec![(cx, cy)],
            }
        })
        .collect()
}

#[test]
fn telemetry_is_bit_identity_preserving() {
    let cfg = RhsdConfig::tiny();
    let samples = synthetic_samples(&cfg, 4);
    let run = |sample_every: usize| {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let mut net = RhsdNetwork::new(cfg.clone(), &mut rng);
        let mut tc = TrainConfig::tiny();
        tc.epochs = 3;
        tc.telemetry = TelemetryConfig { sample_every };
        let report = train_checked(&mut net, &samples, &tc).expect("train");
        let weights: Vec<Vec<f32>> = net
            .params_mut()
            .iter()
            .map(|p| p.value.as_slice().to_vec())
            .collect();
        (report, weights)
    };
    let (with_tel, w_on) = run(4);
    let (without, w_off) = run(0);
    // Model outputs are bit-identical: telemetry only reads tensors.
    assert_eq!(w_on, w_off, "weights must be bit-identical");
    for (a, b) in with_tel.history.iter().zip(&without.history) {
        assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
        assert_eq!(a.mean_grad_norm.to_bits(), b.mean_grad_norm.to_bits());
        assert_eq!(a.pred_hotspot, b.pred_hotspot);
        assert_eq!(a.pred_non_hotspot, b.pred_non_hotspot);
    }
    // ... and only the telemetry side differs.
    assert!(with_tel.history.iter().all(|e| !e.layers.is_empty()));
    assert!(without.history.iter().all(|e| e.layers.is_empty()));
}

/// Injected NaN → typed abort, sentinel ledger event, and a `run_end`
/// line recording the trip reason. Kept in this binary (ledgers are
/// process-global; `tests/ledger_integration.rs` owns the happy path).
#[test]
fn nan_loss_aborts_and_leaves_a_ledger_trail() {
    obs::reset();
    obs::set_enabled(true);
    let path = std::env::temp_dir().join(format!("rhsd_sentinel_it_{}.jsonl", std::process::id()));
    obs::ledger::open(&path, obs::ledger::Manifest::default()).expect("open ledger");

    let cfg = RhsdConfig::tiny();
    let samples = synthetic_samples(&cfg, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(92);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    // Poison one weight: the forward pass goes NaN, so the epoch loss
    // does too.
    net.params_mut()[0].value.as_mut_slice()[0] = f32::NAN;
    let mut tc = TrainConfig::tiny();
    tc.sentinel = SentinelConfig::aborting();
    let abort = train_checked(&mut net, &samples, &tc).expect_err("NaN loss must abort");
    assert!(
        matches!(abort.reason, TripReason::NonFiniteLoss { epoch: 0, .. }),
        "{:?}",
        abort.reason
    );
    let status = format!("aborted: {}", abort.reason.tag());
    obs::ledger::close(&status).expect("close ledger");
    obs::set_enabled(false);
    obs::reset();

    let text = std::fs::read_to_string(&path).expect("ledger file");
    let _ = std::fs::remove_file(&path);
    let parsed: Vec<Value> = text
        .lines()
        .map(|l| obs::json::parse(l).expect("valid JSON line"))
        .collect();
    let field = |v: &Value, key: &str| -> String {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .unwrap_or_default()
    };
    // The sentinel trip is in the stream, typed and attributed. Filter
    // by reason: tests sharing this process may emit their own events
    // into the global sink while this ledger is open.
    let sentinel = parsed
        .iter()
        .find(|v| field(v, "event") == "sentinel" && field(v, "reason") == "non_finite_loss")
        .expect("non_finite_loss sentinel event in ledger");
    assert_eq!(field(sentinel, "action"), "abort");
    assert_eq!(sentinel.get("epoch").and_then(Value::as_u64), Some(0));
    assert!(field(sentinel, "detail").contains("non-finite"));
    // run_end records the trip reason in its status.
    let last = parsed.last().expect("nonempty ledger");
    assert_eq!(field(last, "event"), "run_end");
    assert_eq!(field(last, "status"), "aborted: non_finite_loss");
}
