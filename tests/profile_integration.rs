//! Sampling-profiler non-interference: running the background sampler
//! at full rate while a train + scan executes must not change a single
//! reported number. The profiler only *reads* the per-thread live span
//! stacks — these tests pin that it never perturbs results, and that a
//! profiled run produces well-formed collapsed-stacks and flame-chart
//! artifacts.

use std::sync::{Mutex, MutexGuard};

use rand::SeedableRng;
use rhsd::core::{
    train, RegionDetector, RhsdConfig, RhsdNetwork, StemFeatureCache, TrainConfig,
    DEFAULT_STEM_CACHE_CAP,
};
use rhsd::data::{train_regions, Benchmark, RegionConfig, RegionTileCache, DEFAULT_TILE_CACHE_CAP};
use rhsd::layout::synth::CaseId;
use rhsd::obs::profile::Profiler;
use rhsd_bench::pipeline::{bench_json, DetectorReport};

/// Serialises tests that touch the process-global observability switch
/// (an obs-enabled neighbour would make cache counters visible in one
/// record but not the other).
static OBS: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    OBS.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One tiny end-to-end train + scan, rendered to a bench record.
fn tiny_run() -> (String, Vec<u32>) {
    let bench = Benchmark::demo(CaseId::Case2);
    let region = RegionConfig::demo();
    let mut samples = train_regions(&bench, &region);
    samples.truncate(4);
    let mut cfg = RhsdConfig::tiny();
    cfg.region_px = region.region_px;
    cfg.clip_px = region.clip_px;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    train(&mut net, &samples, &TrainConfig::tiny());
    let mut det = RegionDetector::new(net, region);
    let result = det.scan_test_half(&bench);
    let score_bits = result
        .detections
        .iter()
        .map(|d| d.score.to_bits())
        .collect();
    let row = rhsd::baselines::CaseResult::new(bench.id.name(), &result.evaluation, 0.0);
    let report = DetectorReport::new("Ours", vec![row]);
    (
        bench_json(
            "profile-test",
            true,
            7,
            rhsd::core::Precision::F32,
            &[report],
        ),
        score_bits,
    )
}

/// Strips the lines of a bench record that are timing- or
/// scheduling-dependent by design; everything else must be
/// bit-identical with and without the sampler.
fn strip_volatile(record: &str) -> String {
    record
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("\"seconds\"")
                && !l.starts_with("\"stage_secs\"")
                && !l.starts_with("\"workspace\"")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn sampler_does_not_perturb_bench_results() {
    let _guard = obs_lock();
    let (baseline_json, baseline_scores) = tiny_run();

    // Second run under an aggressive sampler (well above the default
    // 97 Hz) so samples land *during* the measured work.
    let profiler = Profiler::start(997);
    let (sampled_json, sampled_scores) = tiny_run();
    let profile = profiler.stop();

    assert_eq!(
        baseline_scores, sampled_scores,
        "detection scores must be bit-identical under the sampler"
    );
    assert_eq!(
        strip_volatile(&baseline_json),
        strip_volatile(&sampled_json),
        "bench records must agree modulo wall-clock lines"
    );

    // The profiler itself ran: it observed the sampling clock even if
    // no spans were live (observability may be off in this process).
    assert!(profile.hz >= 1);
}

#[test]
fn profiled_spans_produce_wellformed_artifacts() {
    let _guard = obs_lock();
    rhsd::obs::reset();
    rhsd::obs::set_enabled(true);
    let profiler = Profiler::start(2003);
    // Hold named spans long enough for the sampler to observe them.
    {
        let _outer = rhsd::obs::span("scan");
        let _inner = rhsd::obs::span("raster");
        std::thread::sleep(std::time::Duration::from_millis(40));
    }
    let profile = profiler.stop();
    rhsd::obs::set_enabled(false);
    rhsd::obs::reset();

    assert!(profile.busy_samples() > 0, "sampler saw the live spans");
    let collapsed = profile.collapsed();
    assert!(
        collapsed.lines().any(|l| l.starts_with("scan;raster ")),
        "collapsed stacks carry the full path:\n{collapsed}"
    );
    for line in collapsed.lines() {
        let (_, count) = line.rsplit_once(' ').expect("`path count` shape");
        count.parse::<u64>().expect("sample count is an integer");
    }
    let html = profile.flame_html("profile-integration");
    assert!(html.starts_with("<!DOCTYPE html>"), "self-contained page");
    assert!(html.contains("profile-integration"), "title is embedded");
    assert!(html.contains("scan"), "frames are embedded");
}

#[test]
fn second_cached_scan_populates_caches_block() {
    let _guard = obs_lock();
    rhsd::obs::reset();
    rhsd::obs::set_enabled(true);

    let bench = Benchmark::demo(CaseId::Case2);
    let region = RegionConfig::demo();
    let mut cfg = RhsdConfig::tiny();
    cfg.region_px = region.region_px;
    cfg.clip_px = region.clip_px;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let net = RhsdNetwork::new(cfg, &mut rng);
    let mut det = RegionDetector::new(net, region);

    // First scan fills both caches (misses); the second replays them
    // (hits) — tile fingerprints repeat and the network weights are
    // untouched between scans, so every stem activation is reusable.
    let tiles = RegionTileCache::new(DEFAULT_TILE_CACHE_CAP);
    let stems = StemFeatureCache::new(DEFAULT_STEM_CACHE_CAP);
    let first = det.scan_test_half_cached(&bench, &tiles, Some(&stems));
    let second = det.scan_test_half_cached(&bench, &tiles, Some(&stems));
    assert_eq!(first.detections, second.detections);

    let row = rhsd::baselines::CaseResult::new(bench.id.name(), &second.evaluation, 0.0);
    let record = bench_json(
        "cache-telemetry-test",
        true,
        7,
        rhsd::core::Precision::F32,
        &[DetectorReport::new("Ours", vec![row])],
    );
    rhsd::obs::set_enabled(false);
    rhsd::obs::reset();

    let v = rhsd::obs::json::parse(&record).expect("bench record parses");
    let caches = v.get("caches").expect("caches block present");
    for family in ["region_tile", "stem_feature"] {
        let c = caches.get(family).expect("cache family present");
        for gauge in ["hits", "misses"] {
            let n = c.get(gauge).and_then(|g| g.as_u64()).expect("gauge");
            assert!(n > 0, "caches.{family}.{gauge} must be non-zero, got {n}");
        }
    }
}
