//! Integration of the Table-1 baseline detectors with the shared
//! benchmark and evaluation machinery.

use std::sync::OnceLock;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd::baselines::{
    evaluate_layout, faster_rcnn_config, ssd_config, LayoutClip, Tcad18Config, Tcad18Detector,
};
use rhsd::core::{RegionDetector, RhsdNetwork};
use rhsd::data::{Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;
use rhsd::layout::Rect;

fn bench() -> &'static Benchmark {
    static BENCH: OnceLock<Benchmark> = OnceLock::new();
    BENCH.get_or_init(|| Benchmark::demo(CaseId::Case2))
}

#[test]
fn tcad18_scan_produces_consistent_metrics() {
    let b = bench();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut cfg = Tcad18Config::demo();
    cfg.epochs = 1;
    cfg.biased_epochs = 0;
    let mut det = Tcad18Detector::new(cfg, &mut rng);
    det.train_on_benchmark(b, &b.train_extent.clone(), 1);
    // restrict to a sub-extent to keep the debug-mode test fast
    let sub = Rect::new(
        b.test_extent.x0,
        b.test_extent.y0,
        b.test_extent.x0 + 1920,
        b.test_extent.y0 + 1920,
    );
    let (marked, eval) = det.scan(b, &sub);
    assert_eq!(eval.ground_truth, b.hotspots_in(&sub).len());
    assert!(eval.true_positives + eval.false_alarms <= marked.len().max(1));
    // re-evaluating the same marked set reproduces the metrics
    let again = evaluate_layout(&marked, &b.hotspots_in(&sub));
    assert_eq!(eval, again);
}

#[test]
fn generic_detectors_share_the_region_harness() {
    let b = bench();
    let region = RegionConfig::demo();
    for cfg in [faster_rcnn_config(&region), ssd_config(&region)] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = RhsdNetwork::new(cfg, &mut rng);
        let mut det = RegionDetector::new(net, region);
        let result = det.scan_test_half(b);
        assert_eq!(result.regions, 18);
        assert_eq!(
            result.evaluation.ground_truth,
            rhsd::data::test_regions(b, &region)
                .iter()
                .map(|r| r.gt_clips.len())
                .sum::<usize>()
        );
    }
}

#[test]
fn perfect_clip_detector_scores_perfectly_in_layout_space() {
    let b = bench();
    let hotspots = b.test_hotspots();
    let clips: Vec<LayoutClip> = hotspots
        .iter()
        .map(|p| LayoutClip {
            clip: Rect::centered(p.x, p.y, 320, 320),
            score: 1.0,
        })
        .collect();
    let eval = evaluate_layout(&clips, &hotspots);
    assert_eq!(eval.true_positives, hotspots.len());
    assert_eq!(eval.false_alarms, 0);
    assert_eq!(eval.accuracy(), 1.0);
}

#[test]
fn dct_features_distinguish_dense_from_sparse_clips() {
    // The DCT front end must at least carry density information — the DC
    // coefficient of a dense clip dominates a sparse one.
    use rhsd::baselines::dct::feature_tensor;
    use rhsd_tensor::Tensor;
    let dense = Tensor::full([1, 32, 32], 0.9);
    let sparse = Tensor::full([1, 32, 32], 0.1);
    let fd = feature_tensor(&dense, 8, 4);
    let fs = feature_tensor(&sparse, 8, 4);
    assert!(fd.get(&[0, 0, 0]) > 3.0 * fs.get(&[0, 0, 0]));
}
