//! Thread-count determinism: the `rhsd-par` pool uses a fixed chunk
//! schedule with disjoint output slices and an in-order reduction, so
//! every parallel section must produce **bit-identical** f32 results at
//! any thread count. These tests pin that contract for the conv kernels
//! (forward and backward), the litho aerial image, and the end-to-end
//! scan + bench-record accuracy rows.
//!
//! The pool's thread count is process-global (`rhsd::par::set_threads`),
//! so every test serialises on one mutex and restores the default.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use rand::SeedableRng;
use rhsd::core::{train, RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;
use rhsd::litho::aerial::aerial_image;
use rhsd::litho::GaussianKernel;
use rhsd::tensor::ops::conv::{conv2d, conv2d_backward, ConvSpec};
use rhsd::tensor::Tensor;
use rhsd_bench::pipeline::{bench_json, DetectorReport};

/// Serialises tests that switch the global pool size.
static POOL: Mutex<()> = Mutex::new(());

fn pool_lock() -> MutexGuard<'static, ()> {
    POOL.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Runs `f` once at each thread count and returns both results.
fn at_threads<T>(a: usize, b: usize, f: impl Fn() -> T) -> (T, T) {
    rhsd::par::set_threads(a);
    let ra = f();
    rhsd::par::set_threads(b);
    let rb = f();
    rhsd::par::set_threads(rhsd::par::default_threads());
    (ra, rb)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Deterministic pseudo-random fill from a seed and flat coordinates.
fn noise(seed: u64, coords: &[usize]) -> f32 {
    let mut h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &c in coords {
        h = (h ^ c as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 31;
    }
    (h % 2000) as f32 / 1000.0 - 1.0
}

// Property: conv2d output and all three gradients are bit-identical
// between a serial pool and a 4-worker pool, across random shapes and
// contents; likewise the separable aerial-image convolution.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn conv_forward_and_backward_bit_identical(
        seed in 0u64..1_000_000,
        c_in in 1usize..4,
        c_out in 1usize..5,
        hw in 4usize..24,
        kernel_idx in 0usize..3,
    ) {
        let _guard = pool_lock();
        let kernel = [1usize, 3, 5][kernel_idx];
        let spec = ConvSpec::new(kernel, 1, kernel / 2);
        let input = Tensor::from_fn([c_in, hw, hw], |c| noise(seed, c));
        let weight = Tensor::from_fn([c_out, c_in, kernel, kernel], |c| noise(seed ^ 1, c));
        let bias = Tensor::from_fn([c_out], |c| noise(seed ^ 2, c));
        let (oh, ow) = (spec.out_size(hw), spec.out_size(hw));
        let grad = Tensor::from_fn([c_out, oh, ow], |c| noise(seed ^ 3, c));

        let ((o1, gi1, gw1, gb1), (o4, gi4, gw4, gb4)) = at_threads(1, 4, || {
            let out = conv2d(&input, &weight, Some(&bias), spec);
            let (gi, gw, gb) = conv2d_backward(&input, &weight, &grad, spec);
            (out, gi, gw, gb)
        });

        prop_assert_eq!(bits(&o1), bits(&o4), "forward differs");
        prop_assert_eq!(bits(&gi1), bits(&gi4), "d_input differs");
        prop_assert_eq!(bits(&gw1), bits(&gw4), "d_weight differs");
        prop_assert_eq!(bits(&gb1), bits(&gb4), "d_bias differs");
    }

    #[test]
    fn aerial_image_bit_identical(
        seed in 0u64..1_000_000,
        h in 8usize..48,
        w in 8usize..48,
        sigma in 1u32..5,
    ) {
        let _guard = pool_lock();
        let mask = Tensor::from_fn([1, h, w], |c| noise(seed, c).abs());
        let kernel = GaussianKernel::new(f64::from(sigma));
        let (a, b) = at_threads(1, 4, || aerial_image(&mask, &kernel));
        prop_assert_eq!(bits(&a), bits(&b));
    }
}

/// End to end: a tiny train + scan and the rendered bench-record rows
/// must agree bit-for-bit between `--threads 1` and `--threads 4` — the
/// accuracy columns `bench-diff --skip-runtime` gates on are
/// thread-count invariant.
#[test]
fn scan_and_bench_accuracy_rows_bit_identical() {
    let _guard = pool_lock();

    let run = || {
        let bench = Benchmark::demo(CaseId::Case2);
        let region = RegionConfig::demo();
        let mut samples = train_regions(&bench, &region);
        samples.truncate(4);
        let mut cfg = RhsdConfig::tiny();
        cfg.region_px = region.region_px;
        cfg.clip_px = region.clip_px;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut net = RhsdNetwork::new(cfg, &mut rng);
        train(&mut net, &samples, &TrainConfig::tiny());
        let mut det = RegionDetector::new(net, region);
        let result = det.scan_test_half(&bench);
        let row = rhsd::baselines::CaseResult::new(bench.id.name(), &result.evaluation, 0.0);
        let report = DetectorReport::new("Ours", vec![row]);
        let record = bench_json(
            "determinism-test",
            true,
            7,
            rhsd::core::Precision::F32,
            &[report],
        );
        (result, record)
    };
    let ((r1, j1), (r4, j4)) = at_threads(1, 4, run);

    assert_eq!(r1.regions, r4.regions);
    assert_eq!(r1.detections.len(), r4.detections.len());
    for (a, b) in r1.detections.iter().zip(r4.detections.iter()) {
        assert_eq!(a.clip, b.clip);
        assert_eq!(a.region, b.region);
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "scores must match bit-for-bit"
        );
    }
    assert_eq!(
        format!("{:?}", r1.evaluation),
        format!("{:?}", r4.evaluation)
    );

    // The records differ only in scheduling-dependent lines: the
    // recorded thread count and the workspace-pool counters (per-thread
    // scratch pools warm up differently at different pool sizes).
    let strip = |record: &str| -> String {
        record
            .lines()
            .filter(|l| {
                let l = l.trim_start();
                !l.starts_with("\"threads\"") && !l.starts_with("\"workspace\"")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&j1),
        strip(&j4),
        "bench records must match modulo `threads`/`workspace`"
    );
    assert!(j1.contains("\"threads\": 1"), "{j1}");
    assert!(j4.contains("\"threads\": 4"), "{j4}");
}

/// The span-tree *shape* — every stack path with its call count — must
/// be identical at any pool size. Parallel sections run under the
/// submitting thread's span stack (rhsd-par re-installs it as the base
/// stack on every worker), so moving work across threads must not move
/// spans between tree nodes; only per-thread timing attribution may
/// differ.
#[test]
fn span_tree_shape_identical_across_thread_counts() {
    let _guard = pool_lock();

    let run = || {
        rhsd::obs::reset();
        rhsd::obs::set_enabled(true);
        {
            let _scan = rhsd::obs::span("scan");
            let bench = Benchmark::demo(CaseId::Case2);
            let mask = {
                let _raster = rhsd::obs::span("raster");
                Tensor::from_fn([1, 40, 40], |c| noise(11, c).abs())
            };
            let _ = {
                let _litho = rhsd::obs::span("litho");
                aerial_image(&mask, &GaussianKernel::new(2.0))
            };
            drop(bench);
        }
        let tree = rhsd::obs::SpanTree::from_events(&rhsd::obs::span_events());
        rhsd::obs::set_enabled(false);
        rhsd::obs::reset();
        tree
    };
    let (t1, t4) = at_threads(1, 4, run);

    assert!(!t1.is_empty(), "spans were recorded");
    assert_eq!(
        t1.shape(),
        t4.shape(),
        "span-tree shape (paths + call counts) must be pool-size invariant"
    );
}
