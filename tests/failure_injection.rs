//! Failure-injection tests: the stack must degrade loudly (typed errors)
//! or gracefully (empty results) — never silently corrupt output.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd::core::persist::{load_from_reader, save_to_writer};
use rhsd::core::{RhsdConfig, RhsdNetwork};
use rhsd::layout::io::{read_rlf, RlfError};
use rhsd::layout::{Layout, Rect, METAL1};
use rhsd::litho::{label_region, ProcessWindow};
use rhsd::tensor::Tensor;

#[test]
fn truncated_checkpoint_is_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut net = RhsdNetwork::new(RhsdConfig::tiny(), &mut rng);
    let mut buf = Vec::new();
    save_to_writer(&mut net, &mut buf).unwrap();
    // chop the document in half
    buf.truncate(buf.len() / 2);
    assert!(load_from_reader(buf.as_slice()).is_err());
}

#[test]
fn corrupted_checkpoint_json_is_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut net = RhsdNetwork::new(RhsdConfig::tiny(), &mut rng);
    let mut buf = Vec::new();
    save_to_writer(&mut net, &mut buf).unwrap();
    // flip bytes in the middle (a stubbed serializer may emit nothing;
    // an empty stream must still be rejected)
    let mid = buf.len() / 2;
    if buf.len() >= 2 {
        buf[mid] = b'!';
        buf[mid + 1] = b'!';
    }
    assert!(load_from_reader(buf.as_slice()).is_err());
}

#[test]
fn detect_on_pathological_inputs_stays_finite() {
    let cfg = RhsdConfig::tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut net = RhsdNetwork::new(cfg.clone(), &mut rng);
    let n = cfg.region_px;
    for image in [
        Tensor::zeros([1, n, n]),
        Tensor::ones([1, n, n]),
        Tensor::full([1, n, n], 1e6), // absurd intensity
    ] {
        let dets = net.detect(&image);
        for d in &dets {
            assert!(d.score.is_finite(), "score must stay finite");
            assert!(d.bbox.cx.is_finite() && d.bbox.w.is_finite());
        }
    }
}

#[test]
fn litho_oracle_on_empty_layout_is_clean() {
    let layout = Layout::new(Rect::new(0, 0, 2560, 2560));
    let defects = label_region(
        &layout,
        METAL1,
        &Rect::new(0, 0, 2560, 2560),
        &ProcessWindow::euv_default(),
        10.0,
    );
    assert!(defects.is_empty(), "empty layout has no defects");
}

#[test]
fn rlf_parser_survives_garbage() {
    for garbage in [
        "",
        "\u{0}\u{0}\u{0}",
        "RLF 1\nEXTENT a b c d\n",
        "RLF 1\nEXTENT 0 0 100 100\nLAYER 1\nPOLY 0 0 5 5\n",
        "RLF one\n",
    ] {
        match read_rlf(garbage.as_bytes()) {
            Err(
                RlfError::BadHeader
                | RlfError::BadRecord { .. }
                | RlfError::MissingExtent
                | RlfError::UnsupportedVersion(_)
                | RlfError::NoCurrentLayer { .. },
            ) => {}
            Err(RlfError::Io(_)) => {}
            Ok(_) => panic!("garbage {garbage:?} parsed successfully"),
        }
    }
}

#[test]
fn training_with_degenerate_schedule_stays_finite() {
    // zero learning rate: loss constant but finite, no panic
    use rhsd::core::TrainConfig;
    use rhsd::data::RegionSample;
    use rhsd::layout::RasterSpec;

    let cfg = RhsdConfig::tiny();
    let px = cfg.region_px;
    let window = Rect::new(0, 0, (px * 10) as i64, (px * 10) as i64);
    let sample = RegionSample {
        image: Tensor::zeros([1, px, px]),
        window,
        spec: RasterSpec::new(window, px, px),
        gt_clips: vec![],
        gt_centers: vec![],
    };
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let mut tc = TrainConfig::tiny();
    tc.schedule = rhsd::nn::optim::StepDecay::constant(1e-20);
    tc.epochs = 1;
    let hist = rhsd::core::train(&mut net, &[sample], &tc);
    assert!(hist[0].mean_loss.is_finite());
}
