//! Paper-scale smoke tests (expensive: run with `cargo test -- --ignored`).
//!
//! These verify the `RhsdConfig::paper()` architecture — 256-px regions,
//! the Fig. 3/4 channel widths (576-channel inception-B output, 512-wide
//! CPN trunk, 24/48-deep heads) — actually builds and runs a forward
//! pass, even though demo-scale is used for routine CI.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rhsd::core::{RhsdConfig, RhsdNetwork};
use rhsd::tensor::Tensor;

#[test]
#[ignore = "paper-scale forward pass takes minutes on one CPU core"]
fn paper_scale_network_builds_and_detects() {
    let cfg = RhsdConfig::paper();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut net = RhsdNetwork::new(cfg.clone(), &mut rng);
    assert!(
        net.param_count() > 1_000_000,
        "paper scale is million-param class"
    );
    let image = Tensor::rand_uniform([1, cfg.region_px, cfg.region_px], 0.0, 1.0, &mut rng);
    let dets = net.detect(&image);
    for d in &dets {
        assert!(d.score.is_finite());
    }
}

#[test]
fn paper_config_anchor_grid_matches_fig4() {
    // 256-px input at stride 16 → 16×16 grid × 12 anchors; the paper's
    // Fig. 4 shows 14×14 for its 224-px post-crop geometry — same stride.
    let cfg = RhsdConfig::paper();
    assert_eq!(cfg.feature_px(), 16);
    assert_eq!(cfg.total_anchors(), 16 * 16 * 12);
    assert_eq!(
        224 / cfg.stride,
        14,
        "the Fig. 4 grid at the paper's 224-px crop"
    );
}
