//! The steady-state allocation guarantee: once the per-thread scratch
//! pools are warm, repeated inference draws every tensor scratch buffer
//! (im2col matrices, packed GEMM panels, pooling buffers) from the
//! `rhsd_tensor::workspace` pool and performs **zero** workspace
//! allocations. This is the contract the `workspace` block in the
//! bench record (schema `rhsd-bench-table/6`; mirrored by the
//! `cache.workspace.*` obs gauges) makes observable; this test pins it
//! end to end through a real network forward pass.
//!
//! One test per binary: the workspace counters are process-global, and a
//! lone test keeps them quiescent while we read them.

use rand::SeedableRng;
use rhsd::core::{RhsdConfig, RhsdNetwork};
use rhsd::tensor::{workspace, Tensor};

#[test]
fn steady_state_inference_makes_zero_workspace_allocations() {
    // One pool thread: all scratch traffic lands on one warm pool, so
    // the counter deltas below are exact.
    rhsd::par::set_threads(1);

    let cfg = RhsdConfig::tiny();
    let px = cfg.region_px;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let image = Tensor::from_fn([1, px, px], |c| ((c[1] * 31 + c[2] * 7) % 13) as f32 / 13.0);

    // Warm-up: the first passes populate the scratch pool with every
    // buffer size the layer stack asks for.
    for _ in 0..3 {
        net.detect(&image);
    }

    let before = workspace::stats();
    for _ in 0..5 {
        net.detect(&image);
    }
    let after = workspace::stats();

    assert_eq!(
        after.allocs,
        before.allocs,
        "warm inference must perform zero workspace allocations \
         (allocs grew by {})",
        after.allocs - before.allocs
    );
    assert!(
        after.bytes_reused > before.bytes_reused,
        "warm inference must serve its scratch from the pool"
    );
    assert_eq!(after.high_water, before.high_water, "no new retention");

    rhsd::par::set_threads(rhsd::par::default_threads());
}
