//! Reduced-precision scan contract: lowering a trained detector to
//! bf16 or int8 is inference-only, one-way, deterministic, and stays
//! within the advertised accuracy envelope of the f32 reference
//! (|Δaccuracy| ≤ 0.5pt, |Δfalse alarms| ≤ 0.5 — the same bounds the
//! CI `bench-diff --max-accuracy-delta` gate enforces on the quick
//! repro).
//!
//! One shared demo-scale training run feeds every test: training always
//! happens in f32; only the scan path is lowered.

use rand::SeedableRng;
use rhsd::core::{train, Precision, RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;

/// Trains the tiny demo network once (deterministic: fixed seed, fixed
/// schedule) and returns it with the region geometry.
fn trained_demo() -> (RhsdNetwork, RegionConfig, Benchmark) {
    let bench = Benchmark::demo(CaseId::Case2);
    let region = RegionConfig::demo();
    let mut samples = train_regions(&bench, &region);
    samples.truncate(6);
    let mut cfg = RhsdConfig::tiny();
    cfg.region_px = region.region_px;
    cfg.clip_px = region.clip_px;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    train(&mut net, &samples, &TrainConfig::tiny());
    (net, region, bench)
}

fn scan(
    net: &RhsdNetwork,
    region: &RegionConfig,
    bench: &Benchmark,
    precision: Precision,
) -> (f64, usize) {
    let mut detector = RegionDetector::new(net.clone(), *region);
    detector.set_precision(precision);
    assert_eq!(detector.precision(), precision);
    let result = detector.scan_test_half(bench);
    (
        result.evaluation.accuracy() * 100.0,
        result.evaluation.false_alarms,
    )
}

/// int8 (quantised stem) and bf16 (rounded weights) scans must land
/// within the envelope the quantisation path promises: at most half an
/// accuracy point and half a false alarm away from the f32 scan.
#[test]
fn lowered_scans_stay_within_the_accuracy_envelope() {
    let (net, region, bench) = trained_demo();
    let (acc_f32, fa_f32) = scan(&net, &region, &bench, Precision::F32);
    for precision in [Precision::Bf16, Precision::Int8] {
        let (acc, fa) = scan(&net, &region, &bench, precision);
        let dacc = (acc - acc_f32).abs();
        let dfa = (fa as f64 - fa_f32 as f64).abs();
        assert!(
            dacc <= 0.5,
            "{precision}: accuracy {acc:.2} vs f32 {acc_f32:.2} (|Δ| = {dacc:.2}pt > 0.5)"
        );
        assert!(dfa <= 0.5, "{precision}: false alarms {fa} vs f32 {fa_f32}");
    }
}

/// Lowered scans are still deterministic: two scans of the same
/// benchmark with the same lowered detector agree exactly, and two
/// independently lowered detectors agree with each other.
#[test]
fn lowered_scans_are_deterministic() {
    let (net, region, bench) = trained_demo();
    for precision in [Precision::Bf16, Precision::Int8] {
        let a = scan(&net, &region, &bench, precision);
        let b = scan(&net, &region, &bench, precision);
        assert_eq!(a, b, "{precision} scan must be reproducible");
    }
}

/// Lowering is one-way: a quantised detector cannot be raised back to
/// f32 (the rounded weights are gone) — reload the f32 model instead.
#[test]
#[should_panic(expected = "lowering is one-way")]
fn raising_precision_back_panics() {
    let (net, region, _bench) = trained_demo();
    let mut detector = RegionDetector::new(net, region);
    detector.set_precision(Precision::Int8);
    // Re-asserting the current precision is a no-op…
    detector.set_precision(Precision::Int8);
    // …but going back up is a contract violation.
    detector.set_precision(Precision::F32);
}
