//! Smoke tests for the `rhsd` command-line binary.

use std::process::Command;

fn rhsd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rhsd"))
}

#[test]
fn help_prints_usage() {
    let out = rhsd().arg("help").output().expect("run rhsd help");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    for cmd in ["gen", "label", "train", "detect", "eval"] {
        assert!(text.contains(cmd), "usage must mention '{cmd}'");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = rhsd().arg("frobnicate").output().expect("run rhsd");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_required_option_fails() {
    let out = rhsd()
        .args(["gen", "--case", "2"])
        .output()
        .expect("run rhsd gen");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--out"));
}

#[test]
fn gen_writes_parseable_rlf() {
    let dir = std::env::temp_dir().join("rhsd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("case1.rlf");
    let out = rhsd()
        .args(["gen", "--case", "1", "--out", path.to_str().unwrap()])
        .output()
        .expect("run rhsd gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let file = std::fs::File::open(&path).unwrap();
    let layout = rhsd::layout::io::read_rlf(std::io::BufReader::new(file)).unwrap();
    assert!(layout.shape_count(rhsd::layout::METAL1) > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn gen_rejects_bad_case() {
    let out = rhsd()
        .args(["gen", "--case", "9", "--out", "/tmp/never.rlf"])
        .output()
        .expect("run rhsd gen");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown case"));
}
