//! End-to-end observability test: a demo-scale build → train → scan run
//! with instrumentation enabled must emit every pipeline stage span with
//! a nonzero duration, a valid Chrome trace and a metrics snapshot with
//! per-stage latency summaries.
//!
//! Kept as a single `#[test]` in its own binary: the obs registry is
//! process-global, so this test must not share a process with other
//! tests that reset or populate it concurrently.

use rand::SeedableRng;
use rhsd::core::{train, RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;
use rhsd::obs;

/// Stage spans the instrumented pipeline must emit (ISSUE acceptance
/// set; `backbone` and `scan` ride along as extras).
const STAGES: &[&str] = &[
    "raster",
    "litho",
    "train-epoch",
    "scan-region",
    "cpn",
    "hnms",
    "refine",
];

#[test]
fn demo_scan_emits_stage_spans_and_valid_exports() {
    obs::reset();
    obs::set_enabled(true);

    // Build (rasterisation + litho labelling happen inside), train two
    // epochs on a handful of regions, then scan the unseen test half.
    let bench = Benchmark::demo(CaseId::Case2);
    let region = RegionConfig::demo();
    let mut samples = train_regions(&bench, &region);
    samples.truncate(4);
    assert!(!samples.is_empty(), "demo bench yields training regions");

    let mut cfg = RhsdConfig::tiny();
    cfg.region_px = region.region_px;
    cfg.clip_px = region.clip_px;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let history = train(&mut net, &samples, &TrainConfig::tiny());
    assert_eq!(history.len(), 2);

    let mut detector = RegionDetector::new(net, region);
    let result = detector.scan_test_half(&bench);
    assert!(result.regions > 0);

    obs::set_enabled(false);

    // --- Every stage span is present with a nonzero duration.
    let events = obs::span_events();
    for stage in STAGES {
        let spans: Vec<_> = events.iter().filter(|e| e.name == *stage).collect();
        assert!(!spans.is_empty(), "missing stage span {stage:?}");
        assert!(
            spans.iter().any(|e| e.dur_secs > 0.0),
            "stage {stage:?} has only zero-duration spans"
        );
    }

    // Span nesting: scan-region spans contain cpn spans one level deeper.
    let outer = events
        .iter()
        .find(|e| e.name == "scan-region")
        .expect("scan-region span");
    let inner = events
        .iter()
        .find(|e| e.name == "cpn" && e.ts_us >= outer.ts_us)
        .expect("cpn span during the scan");
    assert!(
        inner.depth > outer.depth,
        "cpn should nest under scan-region"
    );

    // --- The Chrome trace is valid JSON and names every stage.
    let trace = obs::chrome_trace_json();
    obs::json::validate(&trace).expect("trace is valid JSON");
    assert!(trace.contains("traceEvents"));
    for stage in STAGES {
        assert!(trace.contains(stage), "trace missing {stage:?}");
    }

    // --- The metrics snapshot summarises each stage's latencies.
    let snapshot = obs::snapshot();
    for stage in STAGES {
        let h = snapshot
            .histograms
            .get(*stage)
            .unwrap_or_else(|| panic!("no latency histogram for {stage:?}"));
        assert!(h.count > 0);
        assert!(h.p50 <= h.p95, "{stage}: p50 {} > p95 {}", h.p50, h.p95);
        assert!(h.max > 0.0);
    }
    // Training diagnostics flowed into the registry.
    assert!(snapshot.histograms.contains_key("train.loss"));
    assert!(snapshot.histograms.contains_key("train.grad_norm"));
    assert_eq!(snapshot.counters.get("train.samples"), Some(&8));

    let metrics = obs::metrics_json();
    obs::json::validate(&metrics).expect("metrics snapshot is valid JSON");
    assert!(metrics.contains("p95"));

    obs::reset();
}
