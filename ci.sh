#!/usr/bin/env bash
# Local CI gate: build, test, lint, format. Run before pushing.
#
#   ./ci.sh              # full gate
#   ./ci.sh --fast       # skip the release build (debug test run only)
#   ./ci.sh --lint-only  # only the workspace linter (cargo xtask lint)
set -euo pipefail
cd "$(dirname "$0")"

fast=0
case "${1:-}" in
--fast) fast=1 ;;
--lint-only)
    exec cargo xtask lint
    ;;
esac

step() { printf '\n== %s ==\n' "$*"; }

if [[ $fast -eq 0 ]]; then
    step "cargo build --release"
    cargo build --workspace --release
fi

step "cargo test"
cargo test --workspace -q

step "cargo test --features debug_invariants"
cargo test -q --features debug_invariants -p rhsd-nn -p rhsd-tensor

step "cargo xtask lint"
cargo xtask lint

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy -D warnings"
cargo clippy --workspace -- -D warnings

printf '\nCI gate passed.\n'
