#!/usr/bin/env bash
# Local CI gate: build, test, lint, format. Run before pushing.
#
#   ./ci.sh               # full gate
#   ./ci.sh --fast        # skip the release build (debug test run only)
#   ./ci.sh --lint-only   # only the workspace linter (cargo xtask lint)
#   ./ci.sh --bench-gate  # only the benchmark regression gate (below)
#
# The bench gate runs a quick deterministic repro_table1, self-checks the
# differ (identical records pass, an injected 20% runtime regression
# fails), then diffs the run against the committed
# BENCH_baseline_quick.json with --skip-runtime (accuracy and false
# alarms are seeded and deterministic; wall-clock is not portable across
# machines). The baseline is tied to the locked dependency set — after a
# legitimate accuracy change, refresh it with:
#
#   BENCH_BASELINE_REFRESH=1 ./ci.sh --bench-gate
set -euo pipefail
cd "$(dirname "$0")"

fast=0
case "${1:-}" in
--fast) fast=1 ;;
--lint-only)
    exec cargo xtask lint
    ;;
--bench-gate)
    bench_gate_only=1
    ;;
esac

step() { printf '\n== %s ==\n' "$*"; }

bench_gate() {
    step "bench gate: quick repro_table1"
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    cargo run --release -p rhsd-bench --bin repro_table1 -- --quick \
        --bench-out "$tmp/current.json" --ledger "$tmp/run.jsonl"

    step "bench gate: ledger sanity"
    head -n 1 "$tmp/run.jsonl" | grep -q '"event":"run_start"' ||
        { echo "ledger does not start with run_start" >&2; return 1; }
    tail -n 1 "$tmp/run.jsonl" | grep -q '"event":"run_end"' ||
        { echo "ledger does not end with run_end" >&2; return 1; }

    step "bench gate: differ self-check (identical records pass)"
    cargo xtask bench-diff "$tmp/current.json" "$tmp/current.json"

    step "bench gate: differ self-check (injected 20% runtime regression fails)"
    python3 - "$tmp/current.json" "$tmp/regressed.json" <<'EOF'
import re, sys
src, dst = sys.argv[1], sys.argv[2]
text = open(src).read()
text = re.sub(r'"seconds": ([0-9.eE+-]+)',
              lambda m: '"seconds": %s' % (float(m.group(1)) * 1.2 + 1e-6), text)
open(dst, 'w').write(text)
EOF
    if cargo xtask bench-diff "$tmp/current.json" "$tmp/regressed.json"; then
        echo "bench-diff failed to flag an injected 20% runtime regression" >&2
        return 1
    fi

    if [[ "${BENCH_BASELINE_REFRESH:-0}" == "1" || ! -f BENCH_baseline_quick.json ]]; then
        step "bench gate: refreshing committed baseline"
        cp "$tmp/current.json" BENCH_baseline_quick.json
        echo "wrote BENCH_baseline_quick.json — commit it"
    else
        step "bench gate: diff against committed baseline (runtime skipped)"
        cargo xtask bench-diff BENCH_baseline_quick.json "$tmp/current.json" \
            --skip-runtime ||
            { echo "regression vs committed baseline (after a legitimate" \
                   "change: BENCH_BASELINE_REFRESH=1 ./ci.sh --bench-gate)" >&2
              return 1; }
    fi
}

if [[ "${bench_gate_only:-0}" -eq 1 ]]; then
    bench_gate
    printf '\nBench gate passed.\n'
    exit 0
fi

if [[ $fast -eq 0 ]]; then
    step "cargo build --release"
    cargo build --workspace --release
fi

step "cargo test"
cargo test --workspace -q

step "cargo test --features debug_invariants"
cargo test -q --features debug_invariants -p rhsd-nn -p rhsd-tensor

step "cargo xtask lint"
cargo xtask lint

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy -D warnings"
cargo clippy --workspace -- -D warnings

printf '\nCI gate passed.\n'
