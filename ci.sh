#!/usr/bin/env bash
# Local + CI gate: build, test, lint, format. Run before pushing.
#
#   ./ci.sh                   # full gate
#   ./ci.sh --fast            # skip the release build (debug test run only)
#   ./ci.sh --lint-only       # only the workspace linter (cargo xtask lint)
#   ./ci.sh --bench-gate      # only the benchmark regression gate (below)
#   ./ci.sh --profile-smoke   # only the deep-observability smoke (below)
#   ./ci.sh --telemetry-smoke # only the training-telemetry smoke (below)
#   ./ci.sh --serve-smoke     # only the rhsd-serve end-to-end smoke (below)
#   ./ci.sh --simd-matrix     # only the ISA/precision matrix (below)
#
# CI mode: when `CI=1` (or `CI=true`, as GitHub Actions sets) the script
# disables colour, prints one machine-readable summary line per step
# (`step|<name>|ok` / `step|<name>|fail (exit N)`), and mirrors those
# lines into $GITHUB_STEP_SUMMARY when Actions provides one. Every step
# fails fast with its own exit code — a failed step is recorded before
# the script aborts and can never be masked by a later step.
#
# The bench gate runs a quick deterministic repro_table1, self-checks the
# differ (identical records pass, an injected 20% runtime regression
# fails), then diffs the run against the committed
# BENCH_baseline_quick.json with --skip-runtime (accuracy and false
# alarms are seeded and deterministic — and thread-count invariant; see
# DESIGN.md §Parallel execution — while wall-clock is not portable across
# machines). The baseline is tied to the locked dependency set — after a
# legitimate accuracy change, refresh it with:
#
#   BENCH_BASELINE_REFRESH=1 ./ci.sh --bench-gate
set -euo pipefail
cd "$(dirname "$0")"

ci=0
case "${CI:-}" in
1 | true)
    ci=1
    export CARGO_TERM_COLOR=never NO_COLOR=1
    ;;
esac

step() { printf '\n== %s ==\n' "$*"; }

# Machine-readable per-step status line (CI mode only).
summary() {
    [[ $ci -eq 1 ]] || return 0
    printf 'step|%s|%s\n' "$1" "$2"
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        printf -- '- `%s`: %s\n' "$1" "$2" >>"$GITHUB_STEP_SUMMARY"
    fi
}

# Runs one named gate step and fails fast with the step's own exit code.
# The status is recorded (and summarised in CI mode) before aborting, so
# a failure cannot be masked by any later command.
run_step() {
    local name="$1"
    shift
    step "$name"
    local rc=0
    "$@" || rc=$?
    if [[ $rc -ne 0 ]]; then
        summary "$name" "fail (exit $rc)"
        echo "ci.sh: step '$name' failed with exit code $rc" >&2
        exit "$rc"
    fi
    summary "$name" ok
}

fast=0
lint_only=0
bench_gate_only=0
profile_smoke_only=0
telemetry_smoke_only=0
serve_smoke_only=0
simd_matrix_only=0
case "${1:-}" in
--fast) fast=1 ;;
--lint-only) lint_only=1 ;;
--bench-gate) bench_gate_only=1 ;;
--profile-smoke) profile_smoke_only=1 ;;
--telemetry-smoke) telemetry_smoke_only=1 ;;
--serve-smoke) serve_smoke_only=1 ;;
--simd-matrix) simd_matrix_only=1 ;;
esac

# Lint-only gate. Exit codes are the linter's own and are propagated
# unchanged by run_step: 0 clean, 1 violations (or a stale allowlist
# entry under --check-allow), 2 internal/usage error. Under CI=1 the
# findings render as GitHub workflow annotations and the JSON report
# (schema rhsd-lint-report/1) is written to lint-report.json for upload.
if [[ $lint_only -eq 1 ]]; then
    lint_cmd=(cargo xtask lint --check-allow)
    if [[ $ci -eq 1 ]]; then
        lint_cmd+=(--format github --out lint-report.json)
    fi
    run_step "lint" "${lint_cmd[@]}"
    printf '\nLint gate passed.\n'
    exit 0
fi

bench_ledger_sanity() {
    head -n 1 "$tmp/run.jsonl" | grep -q '"event":"run_start"' || {
        echo "ledger does not start with run_start" >&2
        return 1
    }
    tail -n 1 "$tmp/run.jsonl" | grep -q '"event":"run_end"' || {
        echo "ledger does not end with run_end" >&2
        return 1
    }
}

bench_inject_regression() {
    python3 - "$tmp/current.json" "$tmp/regressed.json" <<'EOF'
import re, sys
src, dst = sys.argv[1], sys.argv[2]
text = open(src).read()
text = re.sub(r'"seconds": ([0-9.eE+-]+)',
              lambda m: '"seconds": %s' % (float(m.group(1)) * 1.2 + 1e-6), text)
open(dst, 'w').write(text)
EOF
}

# The differ must FAIL on the injected regression; succeeding here is the
# self-check failure.
bench_selfcheck_fails() {
    if cargo xtask bench-diff "$tmp/current.json" "$tmp/regressed.json"; then
        echo "bench-diff failed to flag an injected 20% runtime regression" >&2
        return 1
    fi
    return 0
}

# --min-accuracy 10 is the conservative floor: the quick demo-scale
# detectors average well above it (Ours ≈ 34%, TCAD'18 ≈ 75%), while a
# bias-collapsed model (the PR-6 failure mode) reports 0% and fails loud.
bench_diff_baseline() {
    cargo xtask bench-diff BENCH_baseline_quick.json "$tmp/current.json" \
        --skip-runtime --min-accuracy 10 || {
        echo "regression vs committed baseline (after a legitimate" \
            "change: BENCH_BASELINE_REFRESH=1 ./ci.sh --bench-gate)" >&2
        return 1
    }
}

bench_gate() {
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT

    run_step "bench gate: quick repro_table1" \
        cargo run --release -p rhsd-bench --bin repro_table1 -- --quick \
        --bench-out "$tmp/current.json" --ledger "$tmp/run.jsonl"
    run_step "bench gate: ledger sanity" bench_ledger_sanity
    run_step "bench gate: differ self-check (identical records pass)" \
        cargo xtask bench-diff "$tmp/current.json" "$tmp/current.json"
    run_step "bench gate: inject 20% runtime regression" bench_inject_regression
    run_step "bench gate: differ self-check (injected regression fails)" \
        bench_selfcheck_fails

    # Quantised scan gate: the same quick repro at --precision int8 must
    # stay within half an accuracy point and half a false alarm of the
    # f32 run (runtime skipped: bench-diff refuses cross-precision
    # runtime comparisons by design, and CI machines vary anyway).
    run_step "bench gate: quick repro_table1 (--precision int8)" \
        cargo run --release -p rhsd-bench --bin repro_table1 -- --quick \
        --precision int8 --bench-out "$tmp/int8.json"
    run_step "bench gate: int8 accuracy delta vs f32 (0.5pt / 0.5 FA)" \
        cargo xtask bench-diff "$tmp/current.json" "$tmp/int8.json" \
        --skip-runtime --max-accuracy-delta 0.5

    if [[ "${BENCH_BASELINE_REFRESH:-0}" == "1" || ! -f BENCH_baseline_quick.json ]]; then
        step "bench gate: refreshing committed baseline"
        cp "$tmp/current.json" BENCH_baseline_quick.json
        summary "bench gate: refresh baseline" ok
        echo "wrote BENCH_baseline_quick.json — commit it"
    else
        run_step "bench gate: diff against committed baseline (runtime skipped)" \
            bench_diff_baseline
    fi
}

if [[ $bench_gate_only -eq 1 ]]; then
    bench_gate
    printf '\nBench gate passed.\n'
    exit 0
fi

# Deep-observability smoke: a profiled quick repro must emit well-formed
# collapsed-stacks + flame-chart artifacts and a bench record whose
# caches block shows real traffic, and `cargo xtask report` must render
# the ledger + profile. Artifacts land in PROFILE_SMOKE/ so Actions can
# upload them.
profile_check_artifacts() {
    [[ -s PROFILE_SMOKE/PROFILE_table1.collapsed ]] || {
        echo "PROFILE_table1.collapsed is missing or empty" >&2
        return 1
    }
    # Every collapsed line is `path count`.
    awk 'NF < 2 || $NF !~ /^[0-9]+$/ { bad = 1 } END { exit bad }' \
        PROFILE_SMOKE/PROFILE_table1.collapsed || {
        echo "malformed collapsed-stacks line(s)" >&2
        return 1
    }
    head -c 15 PROFILE_SMOKE/PROFILE_table1.html | grep -q '<!DOCTYPE html>' || {
        echo "PROFILE_table1.html is not a self-contained page" >&2
        return 1
    }
    # The sampler must not blind the caches block: both scan caches saw
    # real traffic during the profiled run.
    python3 - <<'EOF'
import json, sys
rec = json.load(open("PROFILE_SMOKE/BENCH_profiled.json"))
caches = rec["caches"]
for family in ("region_tile", "stem_feature"):
    g = caches[family]
    if g["hits"] + g["misses"] == 0:
        sys.exit(f"caches.{family} recorded no traffic")
EOF
}

profile_report_renders() {
    cargo xtask report PROFILE_SMOKE/run.jsonl \
        --profile PROFILE_SMOKE/PROFILE_table1.collapsed | tee "$tmp/report.txt"
    grep -q 'run report' "$tmp/report.txt" &&
        grep -q 'cache efficiency' "$tmp/report.txt" &&
        grep -q 'sampling profile' "$tmp/report.txt"
}

profile_smoke() {
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    rm -rf PROFILE_SMOKE
    mkdir -p PROFILE_SMOKE

    run_step "profile smoke: profiled quick repro_table1" \
        env -C PROFILE_SMOKE cargo run --release -p rhsd-bench --bin repro_table1 -- \
        --quick --profile=97 --span-tree \
        --bench-out BENCH_profiled.json --ledger run.jsonl
    run_step "profile smoke: artifacts well-formed" profile_check_artifacts
    run_step "profile smoke: xtask report renders" profile_report_renders
}

if [[ $profile_smoke_only -eq 1 ]]; then
    profile_smoke
    printf '\nProfile smoke passed.\n'
    exit 0
fi

# Training-telemetry smoke: a quick training run (divergence sentinel is
# on by default, policy Warn) must land per-layer dynamics in the ledger's
# epoch events, `cargo xtask report` must auto-discover that ledger (no
# path argument) and render the training-dynamics table, and `--html`
# must produce a self-contained learning-dynamics dashboard. Artifacts
# land in TELEMETRY_SMOKE/ so Actions can upload the dashboard.
telemetry_check_ledger() {
    grep -q '"event":"epoch"' TELEMETRY_SMOKE/LEDGER_table1.jsonl || {
        echo "ledger has no epoch events" >&2
        return 1
    }
    grep -q '"layers":\[{"key":' TELEMETRY_SMOKE/LEDGER_table1.jsonl || {
        echo "epoch events carry no per-layer dynamics rows" >&2
        return 1
    }
    grep -q '"label_entropy":' TELEMETRY_SMOKE/LEDGER_table1.jsonl || {
        echo "epoch events carry no label-entropy telemetry" >&2
        return 1
    }
}

# No ledger path on purpose: this exercises the newest-LEDGER_*.jsonl
# auto-discovery from inside TELEMETRY_SMOKE/.
telemetry_report_renders() {
    (cd TELEMETRY_SMOKE &&
        cargo xtask report --html dynamics.html) | tee "$tmp/dynamics.txt"
    grep -q 'training dynamics' "$tmp/dynamics.txt" &&
        grep -q 'layer dynamics' "$tmp/dynamics.txt"
}

telemetry_check_dashboard() {
    head -c 15 TELEMETRY_SMOKE/dynamics.html | grep -q '<!DOCTYPE html>' || {
        echo "dynamics.html is not a self-contained page" >&2
        return 1
    }
    grep -q '<polyline' TELEMETRY_SMOKE/dynamics.html || {
        echo "dynamics.html has no SVG learning curves" >&2
        return 1
    }
    grep -q 'per-layer gradient norm' TELEMETRY_SMOKE/dynamics.html || {
        echo "dynamics.html is missing the per-layer charts" >&2
        return 1
    }
}

telemetry_smoke() {
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    rm -rf TELEMETRY_SMOKE
    mkdir -p TELEMETRY_SMOKE

    run_step "telemetry smoke: quick repro_table1 (sentinel on)" \
        env -C TELEMETRY_SMOKE cargo run --release -p rhsd-bench --bin repro_table1 -- \
        --quick --bench-out BENCH_telemetry.json
    run_step "telemetry smoke: epoch events carry layer dynamics" \
        telemetry_check_ledger
    run_step "telemetry smoke: report auto-discovers ledger and renders" \
        telemetry_report_renders
    run_step "telemetry smoke: HTML dashboard is self-contained" \
        telemetry_check_dashboard
}

if [[ $telemetry_smoke_only -eq 1 ]]; then
    telemetry_smoke
    printf '\nTelemetry smoke passed.\n'
    exit 0
fi

# Serving smoke: quick-train a model (exercising --save-model + its
# artifact ledger event), write the offline reference scan through the
# canonical serialiser, start rhsd-serve on loopback, drive it with
# `cargo xtask loadgen --quick` — which byte-compares every served Case2
# reply against the offline reference and requests a graceful shutdown —
# then assert the server exited 0, its ledger closed with run_end and a
# serve_stats event, the rhsd-serve-bench/1 record is sane, and
# bench-diff both accepts the record and flags an injected throughput
# regression. Artifacts land in SERVE_SMOKE/ so Actions can upload them.
serve_port=17878

serve_check_artifact_event() {
    grep -q '"event":"artifact"' SERVE_SMOKE/train.jsonl &&
        grep -q 'model.json' SERVE_SMOKE/train.jsonl || {
        echo "train ledger has no artifact event for the saved model" >&2
        return 1
    }
}

serve_wait_ready() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$serve_port") 2>/dev/null; then
            return 0
        fi
        sleep 0.2
    done
    echo "rhsd-serve did not open port $serve_port within 20s" >&2
    cat SERVE_SMOKE/server.log >&2 || true
    return 1
}

serve_wait_exit() {
    local rc=0
    wait "$serve_pid" || rc=$?
    serve_pid=""
    if [[ $rc -ne 0 ]]; then
        echo "rhsd-serve exited with code $rc after graceful shutdown" >&2
        cat SERVE_SMOKE/server.log >&2 || true
        return 1
    fi
}

serve_check_ledger() {
    tail -n 1 SERVE_SMOKE/serve.jsonl | grep -q '"event":"run_end"' || {
        echo "serve ledger does not end with run_end" >&2
        return 1
    }
    grep -q '"event":"serve_stats"' SERVE_SMOKE/serve.jsonl || {
        echo "serve ledger carries no serve_stats event" >&2
        return 1
    }
}

serve_check_record() {
    python3 - <<'EOF'
import json, os, sys
rec = json.load(open("SERVE_SMOKE/BENCH_serve.json"))
def fail(msg):
    sys.exit(f"BENCH_serve.json: {msg}")
if rec["schema"] != "rhsd-serve-bench/1":
    fail(f"unexpected schema {rec['schema']}")
if rec["requests"] != 6:  # --quick is 2 connections x 3 requests
    fail(f"expected 6 requests, got {rec['requests']}")
for key in ("rps", "p50_ms", "p99_ms", "batches", "batched_regions"):
    if rec[key] <= 0:
        fail(f"{key} must be positive, got {rec[key]}")
if not rec["bit_identity_checked"]:
    fail("bit-identity was not checked")
if rec["bit_identity_mismatches"] != 0:
    fail(f"{rec['bit_identity_mismatches']} bit-identity mismatches")
want = os.environ.get("SERVE_PRECISION", "f32")
if rec.get("precision", "f32") != want:
    fail(f"expected precision {want}, got {rec.get('precision')}")
if not rec.get("isa"):
    fail("record carries no detected-ISA field")
EOF
}

serve_inject_regression() {
    python3 - SERVE_SMOKE/BENCH_serve.json "$tmp/serve_regressed.json" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
rec["rps"] *= 0.8       # -20% throughput
rec["p99_ms"] *= 1.3    # +30% tail latency
json.dump(rec, open(sys.argv[2], "w"))
EOF
}

serve_diff_selfcheck() {
    cargo xtask bench-diff SERVE_SMOKE/BENCH_serve.json \
        SERVE_SMOKE/BENCH_serve.json || {
        echo "bench-diff rejected identical serve records" >&2
        return 1
    }
    serve_inject_regression
    if cargo xtask bench-diff SERVE_SMOKE/BENCH_serve.json \
        "$tmp/serve_regressed.json"; then
        echo "bench-diff failed to flag an injected serve regression" >&2
        return 1
    fi
    return 0
}

serve_smoke() {
    # SERVE_PRECISION picks the scan precision for the whole smoke (the
    # --simd-matrix leg reruns it at int8); loadgen's byte-compare then
    # proves served replies match the *same-precision* offline scan.
    export SERVE_PRECISION="${SERVE_PRECISION:-f32}"
    tmp=$(mktemp -d)
    serve_pid=""
    trap '[[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
    rm -rf SERVE_SMOKE
    mkdir -p SERVE_SMOKE

    run_step "serve smoke: build server + harness" \
        cargo build --release -p rhsd-serve -p rhsd-bench -p xtask
    run_step "serve smoke: quick-train + --save-model" \
        cargo run --release -p rhsd-bench --bin repro_table1 -- --quick \
        --save-model SERVE_SMOKE/model.json --ledger SERVE_SMOKE/train.jsonl \
        --bench-out SERVE_SMOKE/BENCH_train.json
    run_step "serve smoke: saved model noted in train ledger" \
        serve_check_artifact_event
    run_step "serve smoke: offline reference scan ($SERVE_PRECISION)" \
        target/release/rhsd-serve --model SERVE_SMOKE/model.json \
        --precision "$SERVE_PRECISION" \
        --offline-scan Case2 --half test --out SERVE_SMOKE/ref_case2.json

    step "serve smoke: start rhsd-serve on loopback ($SERVE_PRECISION)"
    target/release/rhsd-serve --model SERVE_SMOKE/model.json \
        --precision "$SERVE_PRECISION" \
        --port "$serve_port" --ledger SERVE_SMOKE/serve.jsonl \
        >SERVE_SMOKE/server.log 2>&1 &
    serve_pid=$!
    summary "serve smoke: start rhsd-serve" ok

    run_step "serve smoke: listen socket is up" serve_wait_ready
    run_step "serve smoke: loadgen (bit-identity + graceful shutdown)" \
        cargo xtask loadgen --quick --addr "127.0.0.1:$serve_port" \
        --expect Case2=SERVE_SMOKE/ref_case2.json --shutdown \
        --out SERVE_SMOKE/BENCH_serve.json
    run_step "serve smoke: server exits 0" serve_wait_exit
    run_step "serve smoke: serve ledger sane (run_end + serve_stats)" \
        serve_check_ledger
    run_step "serve smoke: throughput record sane" serve_check_record
    run_step "serve smoke: differ understands serve records" \
        serve_diff_selfcheck
}

if [[ $serve_smoke_only -eq 1 ]]; then
    serve_smoke
    printf '\nServe smoke passed.\n'
    exit 0
fi

# ISA/precision matrix: the SIMD kernels must stay bit-identical to the
# scalar reference (RHSD_FORCE_SCALAR=1 reruns the kernel, determinism
# and precision suites through the scalar dispatch), the opt-in
# fast-math FMA tile must hold its epsilon contract, and the whole serve
# smoke must pass end-to-end at --precision int8 (served int8 replies
# byte-identical to the int8 offline reference).
simd_matrix() {
    run_step "simd matrix: forced-scalar crate tests" \
        env RHSD_FORCE_SCALAR=1 cargo test -q -p rhsd-tensor -p rhsd-nn -p rhsd-core
    run_step "simd matrix: forced-scalar precision + determinism suites" \
        env RHSD_FORCE_SCALAR=1 cargo test -q --test precision --test determinism
    run_step "simd matrix: fast-math feature tests" \
        cargo test -q -p rhsd-tensor --features fast-math
    SERVE_PRECISION=int8 serve_smoke
}

if [[ $simd_matrix_only -eq 1 ]]; then
    simd_matrix
    printf '\nSIMD/precision matrix passed.\n'
    exit 0
fi

if [[ $fast -eq 0 ]]; then
    run_step "cargo build --release" cargo build --workspace --release
fi

run_step "cargo test" cargo test --workspace -q

run_step "cargo test --features debug_invariants" \
    cargo test -q --features debug_invariants -p rhsd-nn -p rhsd-tensor

run_step "cargo xtask lint" cargo xtask lint --check-allow

run_step "cargo fmt --check" cargo fmt --all --check

run_step "cargo clippy -D warnings" cargo clippy --workspace -- -D warnings

printf '\nCI gate passed.\n'
