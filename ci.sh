#!/usr/bin/env bash
# Local CI gate: build, test, format, lint. Run before pushing.
#
#   ./ci.sh           # full gate
#   ./ci.sh --fast    # skip the release build (debug test run only)
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n== %s ==\n' "$*"; }

if [[ $fast -eq 0 ]]; then
    step "cargo build --release"
    cargo build --workspace --release
fi

step "cargo test"
cargo test --workspace -q

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy -D warnings"
cargo clippy --workspace -- -D warnings

printf '\nCI gate passed.\n'
