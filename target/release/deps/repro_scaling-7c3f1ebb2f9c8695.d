/root/repo/target/release/deps/repro_scaling-7c3f1ebb2f9c8695.d: crates/bench/src/bin/repro_scaling.rs

/root/repo/target/release/deps/repro_scaling-7c3f1ebb2f9c8695: crates/bench/src/bin/repro_scaling.rs

crates/bench/src/bin/repro_scaling.rs:
