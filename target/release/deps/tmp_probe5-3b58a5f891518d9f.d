/root/repo/target/release/deps/tmp_probe5-3b58a5f891518d9f.d: tests/tmp_probe5.rs

/root/repo/target/release/deps/tmp_probe5-3b58a5f891518d9f: tests/tmp_probe5.rs

tests/tmp_probe5.rs:
