/root/repo/target/release/deps/rhsd_tensor-9adb910ae24d5980.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

/root/repo/target/release/deps/librhsd_tensor-9adb910ae24d5980.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

/root/repo/target/release/deps/librhsd_tensor-9adb910ae24d5980.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/invariants.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/deconv.rs:
crates/tensor/src/ops/elementwise.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/reduce.rs:
crates/tensor/src/ops/softmax.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/workspace.rs:
