/root/repo/target/release/deps/xtask-eb99208d3d7f28a4.d: xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs

/root/repo/target/release/deps/xtask-eb99208d3d7f28a4: xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs

xtask/src/main.rs:
xtask/src/bench_diff.rs:
xtask/src/lint/mod.rs:
xtask/src/lint/rules.rs:
xtask/src/lint/source.rs:
xtask/src/microbench.rs:
xtask/src/report.rs:
