/root/repo/target/release/deps/tmp_probe7-f8e1c8e281a6c3e9.d: tests/tmp_probe7.rs

/root/repo/target/release/deps/tmp_probe7-f8e1c8e281a6c3e9: tests/tmp_probe7.rs

tests/tmp_probe7.rs:
