/root/repo/target/release/deps/tmp_probe4-89c86158fddadc8e.d: tests/tmp_probe4.rs

/root/repo/target/release/deps/tmp_probe4-89c86158fddadc8e: tests/tmp_probe4.rs

tests/tmp_probe4.rs:
