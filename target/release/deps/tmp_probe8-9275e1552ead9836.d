/root/repo/target/release/deps/tmp_probe8-9275e1552ead9836.d: tests/tmp_probe8.rs

/root/repo/target/release/deps/tmp_probe8-9275e1552ead9836: tests/tmp_probe8.rs

tests/tmp_probe8.rs:
