/root/repo/target/release/deps/tmp_probe-db57069f311eaa11.d: tests/tmp_probe.rs

/root/repo/target/release/deps/tmp_probe-db57069f311eaa11: tests/tmp_probe.rs

tests/tmp_probe.rs:
