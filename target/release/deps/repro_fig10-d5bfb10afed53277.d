/root/repo/target/release/deps/repro_fig10-d5bfb10afed53277.d: crates/bench/src/bin/repro_fig10.rs

/root/repo/target/release/deps/repro_fig10-d5bfb10afed53277: crates/bench/src/bin/repro_fig10.rs

crates/bench/src/bin/repro_fig10.rs:
