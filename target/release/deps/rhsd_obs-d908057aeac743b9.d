/root/repo/target/release/deps/rhsd_obs-d908057aeac743b9.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs

/root/repo/target/release/deps/librhsd_obs-d908057aeac743b9.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs

/root/repo/target/release/deps/librhsd_obs-d908057aeac743b9.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/ledger.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/span.rs:
crates/obs/src/spantree.rs:
