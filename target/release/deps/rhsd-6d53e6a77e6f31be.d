/root/repo/target/release/deps/rhsd-6d53e6a77e6f31be.d: src/lib.rs

/root/repo/target/release/deps/librhsd-6d53e6a77e6f31be.rlib: src/lib.rs

/root/repo/target/release/deps/librhsd-6d53e6a77e6f31be.rmeta: src/lib.rs

src/lib.rs:
