/root/repo/target/release/deps/rand_chacha-bbbef07a70c76895.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-bbbef07a70c76895.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-bbbef07a70c76895.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
