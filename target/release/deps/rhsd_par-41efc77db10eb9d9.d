/root/repo/target/release/deps/rhsd_par-41efc77db10eb9d9.d: crates/par/src/lib.rs

/root/repo/target/release/deps/librhsd_par-41efc77db10eb9d9.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/librhsd_par-41efc77db10eb9d9.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
