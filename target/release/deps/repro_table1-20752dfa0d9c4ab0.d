/root/repo/target/release/deps/repro_table1-20752dfa0d9c4ab0.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/release/deps/repro_table1-20752dfa0d9c4ab0: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
