/root/repo/target/release/deps/tmp_probe6-7e99ce5c4eaf56dd.d: tests/tmp_probe6.rs

/root/repo/target/release/deps/tmp_probe6-7e99ce5c4eaf56dd: tests/tmp_probe6.rs

tests/tmp_probe6.rs:
