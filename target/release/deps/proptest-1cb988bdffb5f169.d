/root/repo/target/release/deps/proptest-1cb988bdffb5f169.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1cb988bdffb5f169.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1cb988bdffb5f169.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
