/root/repo/target/release/deps/rhsd_core-7ea613c4c0aa68e8.d: crates/core/src/lib.rs crates/core/src/anchor.rs crates/core/src/boxcode.rs crates/core/src/config.rs crates/core/src/cpn.rs crates/core/src/detector.rs crates/core/src/extractor.rs crates/core/src/feature_cache.rs crates/core/src/hnms.rs crates/core/src/loss.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/persist.rs crates/core/src/pruning.rs crates/core/src/refine.rs crates/core/src/roc.rs crates/core/src/train.rs

/root/repo/target/release/deps/librhsd_core-7ea613c4c0aa68e8.rlib: crates/core/src/lib.rs crates/core/src/anchor.rs crates/core/src/boxcode.rs crates/core/src/config.rs crates/core/src/cpn.rs crates/core/src/detector.rs crates/core/src/extractor.rs crates/core/src/feature_cache.rs crates/core/src/hnms.rs crates/core/src/loss.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/persist.rs crates/core/src/pruning.rs crates/core/src/refine.rs crates/core/src/roc.rs crates/core/src/train.rs

/root/repo/target/release/deps/librhsd_core-7ea613c4c0aa68e8.rmeta: crates/core/src/lib.rs crates/core/src/anchor.rs crates/core/src/boxcode.rs crates/core/src/config.rs crates/core/src/cpn.rs crates/core/src/detector.rs crates/core/src/extractor.rs crates/core/src/feature_cache.rs crates/core/src/hnms.rs crates/core/src/loss.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/persist.rs crates/core/src/pruning.rs crates/core/src/refine.rs crates/core/src/roc.rs crates/core/src/train.rs

crates/core/src/lib.rs:
crates/core/src/anchor.rs:
crates/core/src/boxcode.rs:
crates/core/src/config.rs:
crates/core/src/cpn.rs:
crates/core/src/detector.rs:
crates/core/src/extractor.rs:
crates/core/src/feature_cache.rs:
crates/core/src/hnms.rs:
crates/core/src/loss.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/persist.rs:
crates/core/src/pruning.rs:
crates/core/src/refine.rs:
crates/core/src/roc.rs:
crates/core/src/train.rs:
