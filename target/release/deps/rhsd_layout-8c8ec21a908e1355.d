/root/repo/target/release/deps/rhsd_layout-8c8ec21a908e1355.d: crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs

/root/repo/target/release/deps/librhsd_layout-8c8ec21a908e1355.rlib: crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs

/root/repo/target/release/deps/librhsd_layout-8c8ec21a908e1355.rmeta: crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs

crates/layout/src/lib.rs:
crates/layout/src/drc.rs:
crates/layout/src/geom.rs:
crates/layout/src/io.rs:
crates/layout/src/layout.rs:
crates/layout/src/polygon.rs:
crates/layout/src/raster.rs:
crates/layout/src/synth/mod.rs:
crates/layout/src/synth/cases.rs:
crates/layout/src/synth/generator.rs:
crates/layout/src/synth/rules.rs:
