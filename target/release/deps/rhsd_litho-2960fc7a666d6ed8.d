/root/repo/target/release/deps/rhsd_litho-2960fc7a666d6ed8.d: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

/root/repo/target/release/deps/librhsd_litho-2960fc7a666d6ed8.rlib: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

/root/repo/target/release/deps/librhsd_litho-2960fc7a666d6ed8.rmeta: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

crates/litho/src/lib.rs:
crates/litho/src/aerial.rs:
crates/litho/src/cd.rs:
crates/litho/src/hotspot.rs:
crates/litho/src/kernel.rs:
crates/litho/src/resist.rs:
crates/litho/src/window.rs:
