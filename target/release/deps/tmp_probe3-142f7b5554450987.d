/root/repo/target/release/deps/tmp_probe3-142f7b5554450987.d: tests/tmp_probe3.rs

/root/repo/target/release/deps/tmp_probe3-142f7b5554450987: tests/tmp_probe3.rs

tests/tmp_probe3.rs:
