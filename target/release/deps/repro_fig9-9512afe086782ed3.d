/root/repo/target/release/deps/repro_fig9-9512afe086782ed3.d: crates/bench/src/bin/repro_fig9.rs

/root/repo/target/release/deps/repro_fig9-9512afe086782ed3: crates/bench/src/bin/repro_fig9.rs

crates/bench/src/bin/repro_fig9.rs:
