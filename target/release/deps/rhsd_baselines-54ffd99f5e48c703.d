/root/repo/target/release/deps/rhsd_baselines-54ffd99f5e48c703.d: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

/root/repo/target/release/deps/librhsd_baselines-54ffd99f5e48c703.rlib: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

/root/repo/target/release/deps/librhsd_baselines-54ffd99f5e48c703.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dct.rs:
crates/baselines/src/eval.rs:
crates/baselines/src/generic.rs:
crates/baselines/src/tcad18.rs:
