/root/repo/target/release/deps/rhsd_bench-4f7976f79b538663.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

/root/repo/target/release/deps/librhsd_bench-4f7976f79b538663.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

/root/repo/target/release/deps/librhsd_bench-4f7976f79b538663.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/table.rs:
crates/bench/src/viz.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
