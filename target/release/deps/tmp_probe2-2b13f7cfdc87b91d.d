/root/repo/target/release/deps/tmp_probe2-2b13f7cfdc87b91d.d: tests/tmp_probe2.rs

/root/repo/target/release/deps/tmp_probe2-2b13f7cfdc87b91d: tests/tmp_probe2.rs

tests/tmp_probe2.rs:
