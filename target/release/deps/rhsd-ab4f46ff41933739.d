/root/repo/target/release/deps/rhsd-ab4f46ff41933739.d: src/bin/rhsd.rs

/root/repo/target/release/deps/rhsd-ab4f46ff41933739: src/bin/rhsd.rs

src/bin/rhsd.rs:
