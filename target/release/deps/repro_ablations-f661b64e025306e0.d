/root/repo/target/release/deps/repro_ablations-f661b64e025306e0.d: crates/bench/src/bin/repro_ablations.rs

/root/repo/target/release/deps/repro_ablations-f661b64e025306e0: crates/bench/src/bin/repro_ablations.rs

crates/bench/src/bin/repro_ablations.rs:
