/root/repo/target/release/deps/rhsd_data-abc4a8d47a234d3f.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs

/root/repo/target/release/deps/librhsd_data-abc4a8d47a234d3f.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs

/root/repo/target/release/deps/librhsd_data-abc4a8d47a234d3f.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/bbox.rs:
crates/data/src/benchmark.rs:
crates/data/src/clips.rs:
crates/data/src/region.rs:
crates/data/src/region_cache.rs:
