/root/repo/target/debug/examples/quickstart-d5287fa9372c7cb8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d5287fa9372c7cb8: examples/quickstart.rs

examples/quickstart.rs:
