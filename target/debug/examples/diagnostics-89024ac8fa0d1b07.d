/root/repo/target/debug/examples/diagnostics-89024ac8fa0d1b07.d: examples/diagnostics.rs

/root/repo/target/debug/examples/diagnostics-89024ac8fa0d1b07: examples/diagnostics.rs

examples/diagnostics.rs:
