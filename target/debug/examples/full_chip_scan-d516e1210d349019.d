/root/repo/target/debug/examples/full_chip_scan-d516e1210d349019.d: examples/full_chip_scan.rs

/root/repo/target/debug/examples/full_chip_scan-d516e1210d349019: examples/full_chip_scan.rs

examples/full_chip_scan.rs:
