/root/repo/target/debug/examples/process_window-4dde278567b978e7.d: examples/process_window.rs

/root/repo/target/debug/examples/process_window-4dde278567b978e7: examples/process_window.rs

examples/process_window.rs:
