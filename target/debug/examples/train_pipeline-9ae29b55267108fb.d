/root/repo/target/debug/examples/train_pipeline-9ae29b55267108fb.d: examples/train_pipeline.rs

/root/repo/target/debug/examples/train_pipeline-9ae29b55267108fb: examples/train_pipeline.rs

examples/train_pipeline.rs:
