/root/repo/target/debug/examples/visualize-33add2973e0a811f.d: examples/visualize.rs

/root/repo/target/debug/examples/visualize-33add2973e0a811f: examples/visualize.rs

examples/visualize.rs:
