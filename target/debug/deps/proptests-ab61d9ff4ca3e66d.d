/root/repo/target/debug/deps/proptests-ab61d9ff4ca3e66d.d: crates/litho/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ab61d9ff4ca3e66d: crates/litho/tests/proptests.rs

crates/litho/tests/proptests.rs:
