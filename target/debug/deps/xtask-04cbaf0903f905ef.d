/root/repo/target/debug/deps/xtask-04cbaf0903f905ef.d: /root/repo/clippy.toml xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-04cbaf0903f905ef.rmeta: /root/repo/clippy.toml xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs Cargo.toml

/root/repo/clippy.toml:
xtask/src/main.rs:
xtask/src/bench_diff.rs:
xtask/src/lint/mod.rs:
xtask/src/lint/rules.rs:
xtask/src/lint/source.rs:
xtask/src/microbench.rs:
xtask/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
