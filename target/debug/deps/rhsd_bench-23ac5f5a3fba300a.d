/root/repo/target/debug/deps/rhsd_bench-23ac5f5a3fba300a.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

/root/repo/target/debug/deps/rhsd_bench-23ac5f5a3fba300a: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/table.rs:
crates/bench/src/viz.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
