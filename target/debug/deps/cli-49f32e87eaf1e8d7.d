/root/repo/target/debug/deps/cli-49f32e87eaf1e8d7.d: tests/cli.rs

/root/repo/target/debug/deps/cli-49f32e87eaf1e8d7: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_rhsd=/root/repo/target/debug/rhsd
