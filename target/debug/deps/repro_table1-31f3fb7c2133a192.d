/root/repo/target/debug/deps/repro_table1-31f3fb7c2133a192.d: /root/repo/clippy.toml crates/bench/src/bin/repro_table1.rs Cargo.toml

/root/repo/target/debug/deps/librepro_table1-31f3fb7c2133a192.rmeta: /root/repo/clippy.toml crates/bench/src/bin/repro_table1.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/repro_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
