/root/repo/target/debug/deps/proptests-887b910888430fd1.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-887b910888430fd1: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
