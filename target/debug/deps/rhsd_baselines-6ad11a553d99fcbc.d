/root/repo/target/debug/deps/rhsd_baselines-6ad11a553d99fcbc.d: /root/repo/clippy.toml crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_baselines-6ad11a553d99fcbc.rmeta: /root/repo/clippy.toml crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs Cargo.toml

/root/repo/clippy.toml:
crates/baselines/src/lib.rs:
crates/baselines/src/dct.rs:
crates/baselines/src/eval.rs:
crates/baselines/src/generic.rs:
crates/baselines/src/tcad18.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
