/root/repo/target/debug/deps/rhsd_obs-249be026c376ac8a.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs

/root/repo/target/debug/deps/rhsd_obs-249be026c376ac8a: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/ledger.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/span.rs:
crates/obs/src/spantree.rs:
