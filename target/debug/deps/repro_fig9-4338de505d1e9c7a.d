/root/repo/target/debug/deps/repro_fig9-4338de505d1e9c7a.d: crates/bench/src/bin/repro_fig9.rs

/root/repo/target/debug/deps/repro_fig9-4338de505d1e9c7a: crates/bench/src/bin/repro_fig9.rs

crates/bench/src/bin/repro_fig9.rs:
