/root/repo/target/debug/deps/criterion-6123122dec533910.d: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-6123122dec533910.rmeta: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
