/root/repo/target/debug/deps/repro_fig9-262db708b5e177a6.d: crates/bench/src/bin/repro_fig9.rs

/root/repo/target/debug/deps/repro_fig9-262db708b5e177a6: crates/bench/src/bin/repro_fig9.rs

crates/bench/src/bin/repro_fig9.rs:
