/root/repo/target/debug/deps/serde_derive-60ccb74852c1317c.d: /root/repo/clippy.toml vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-60ccb74852c1317c.rmeta: /root/repo/clippy.toml vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
