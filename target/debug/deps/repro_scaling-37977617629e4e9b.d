/root/repo/target/debug/deps/repro_scaling-37977617629e4e9b.d: crates/bench/src/bin/repro_scaling.rs

/root/repo/target/debug/deps/repro_scaling-37977617629e4e9b: crates/bench/src/bin/repro_scaling.rs

crates/bench/src/bin/repro_scaling.rs:
