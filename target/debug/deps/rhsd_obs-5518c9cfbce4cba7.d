/root/repo/target/debug/deps/rhsd_obs-5518c9cfbce4cba7.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs

/root/repo/target/debug/deps/librhsd_obs-5518c9cfbce4cba7.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs

/root/repo/target/debug/deps/librhsd_obs-5518c9cfbce4cba7.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/ledger.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/span.rs:
crates/obs/src/spantree.rs:
