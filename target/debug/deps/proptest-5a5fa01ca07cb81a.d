/root/repo/target/debug/deps/proptest-5a5fa01ca07cb81a.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-5a5fa01ca07cb81a.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
