/root/repo/target/debug/deps/rand_chacha-2a87a535d9b05ce5.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-2a87a535d9b05ce5: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
