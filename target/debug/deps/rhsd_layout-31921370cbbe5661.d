/root/repo/target/debug/deps/rhsd_layout-31921370cbbe5661.d: /root/repo/clippy.toml crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_layout-31921370cbbe5661.rmeta: /root/repo/clippy.toml crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs Cargo.toml

/root/repo/clippy.toml:
crates/layout/src/lib.rs:
crates/layout/src/drc.rs:
crates/layout/src/geom.rs:
crates/layout/src/io.rs:
crates/layout/src/layout.rs:
crates/layout/src/polygon.rs:
crates/layout/src/raster.rs:
crates/layout/src/synth/mod.rs:
crates/layout/src/synth/cases.rs:
crates/layout/src/synth/generator.rs:
crates/layout/src/synth/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
