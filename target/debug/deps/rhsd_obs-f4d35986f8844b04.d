/root/repo/target/debug/deps/rhsd_obs-f4d35986f8844b04.d: /root/repo/clippy.toml crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_obs-f4d35986f8844b04.rmeta: /root/repo/clippy.toml crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/ledger.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/span.rs crates/obs/src/spantree.rs Cargo.toml

/root/repo/clippy.toml:
crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/ledger.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/span.rs:
crates/obs/src/spantree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
