/root/repo/target/debug/deps/rhsd_layout-44d77046a94392da.d: crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs

/root/repo/target/debug/deps/librhsd_layout-44d77046a94392da.rlib: crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs

/root/repo/target/debug/deps/librhsd_layout-44d77046a94392da.rmeta: crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs

crates/layout/src/lib.rs:
crates/layout/src/drc.rs:
crates/layout/src/geom.rs:
crates/layout/src/io.rs:
crates/layout/src/layout.rs:
crates/layout/src/polygon.rs:
crates/layout/src/raster.rs:
crates/layout/src/synth/mod.rs:
crates/layout/src/synth/cases.rs:
crates/layout/src/synth/generator.rs:
crates/layout/src/synth/rules.rs:
