/root/repo/target/debug/deps/repro_scaling-e08a6de7bf0c4ab0.d: /root/repo/clippy.toml crates/bench/src/bin/repro_scaling.rs Cargo.toml

/root/repo/target/debug/deps/librepro_scaling-e08a6de7bf0c4ab0.rmeta: /root/repo/clippy.toml crates/bench/src/bin/repro_scaling.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/repro_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
