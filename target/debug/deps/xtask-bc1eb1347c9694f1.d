/root/repo/target/debug/deps/xtask-bc1eb1347c9694f1.d: xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs

/root/repo/target/debug/deps/xtask-bc1eb1347c9694f1: xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs

xtask/src/main.rs:
xtask/src/bench_diff.rs:
xtask/src/lint/mod.rs:
xtask/src/lint/rules.rs:
xtask/src/lint/source.rs:
xtask/src/microbench.rs:
xtask/src/report.rs:
