/root/repo/target/debug/deps/rhsd_par-fa488df6f0666051.d: /root/repo/clippy.toml crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_par-fa488df6f0666051.rmeta: /root/repo/clippy.toml crates/par/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
