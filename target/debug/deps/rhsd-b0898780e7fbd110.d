/root/repo/target/debug/deps/rhsd-b0898780e7fbd110.d: /root/repo/clippy.toml src/bin/rhsd.rs Cargo.toml

/root/repo/target/debug/deps/librhsd-b0898780e7fbd110.rmeta: /root/repo/clippy.toml src/bin/rhsd.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/rhsd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
