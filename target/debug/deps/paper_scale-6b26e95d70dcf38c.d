/root/repo/target/debug/deps/paper_scale-6b26e95d70dcf38c.d: tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-6b26e95d70dcf38c: tests/paper_scale.rs

tests/paper_scale.rs:
