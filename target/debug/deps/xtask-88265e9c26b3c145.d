/root/repo/target/debug/deps/xtask-88265e9c26b3c145.d: xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs

/root/repo/target/debug/deps/xtask-88265e9c26b3c145: xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs

xtask/src/main.rs:
xtask/src/bench_diff.rs:
xtask/src/lint/mod.rs:
xtask/src/lint/rules.rs:
xtask/src/lint/source.rs:
xtask/src/microbench.rs:
xtask/src/report.rs:
