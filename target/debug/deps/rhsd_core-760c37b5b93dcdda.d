/root/repo/target/debug/deps/rhsd_core-760c37b5b93dcdda.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/anchor.rs crates/core/src/boxcode.rs crates/core/src/config.rs crates/core/src/cpn.rs crates/core/src/detector.rs crates/core/src/extractor.rs crates/core/src/feature_cache.rs crates/core/src/hnms.rs crates/core/src/loss.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/persist.rs crates/core/src/pruning.rs crates/core/src/refine.rs crates/core/src/roc.rs crates/core/src/train.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_core-760c37b5b93dcdda.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/anchor.rs crates/core/src/boxcode.rs crates/core/src/config.rs crates/core/src/cpn.rs crates/core/src/detector.rs crates/core/src/extractor.rs crates/core/src/feature_cache.rs crates/core/src/hnms.rs crates/core/src/loss.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/persist.rs crates/core/src/pruning.rs crates/core/src/refine.rs crates/core/src/roc.rs crates/core/src/train.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/anchor.rs:
crates/core/src/boxcode.rs:
crates/core/src/config.rs:
crates/core/src/cpn.rs:
crates/core/src/detector.rs:
crates/core/src/extractor.rs:
crates/core/src/feature_cache.rs:
crates/core/src/hnms.rs:
crates/core/src/loss.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/persist.rs:
crates/core/src/pruning.rs:
crates/core/src/refine.rs:
crates/core/src/roc.rs:
crates/core/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
