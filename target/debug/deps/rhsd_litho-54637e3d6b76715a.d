/root/repo/target/debug/deps/rhsd_litho-54637e3d6b76715a.d: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

/root/repo/target/debug/deps/librhsd_litho-54637e3d6b76715a.rlib: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

/root/repo/target/debug/deps/librhsd_litho-54637e3d6b76715a.rmeta: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

crates/litho/src/lib.rs:
crates/litho/src/aerial.rs:
crates/litho/src/cd.rs:
crates/litho/src/hotspot.rs:
crates/litho/src/kernel.rs:
crates/litho/src/resist.rs:
crates/litho/src/window.rs:
