/root/repo/target/debug/deps/end_to_end-35c2c1fc5c669c2c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-35c2c1fc5c669c2c: tests/end_to_end.rs

tests/end_to_end.rs:
