/root/repo/target/debug/deps/rhsd-810e1a403cf813ec.d: src/lib.rs

/root/repo/target/debug/deps/librhsd-810e1a403cf813ec.rlib: src/lib.rs

/root/repo/target/debug/deps/librhsd-810e1a403cf813ec.rmeta: src/lib.rs

src/lib.rs:
