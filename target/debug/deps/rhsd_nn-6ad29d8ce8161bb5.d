/root/repo/target/debug/deps/rhsd_nn-6ad29d8ce8161bb5.d: /root/repo/clippy.toml crates/nn/src/lib.rs crates/nn/src/encdec.rs crates/nn/src/inception.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/activation2.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/deconv2d.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/optim_adam.rs crates/nn/src/param.rs crates/nn/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_nn-6ad29d8ce8161bb5.rmeta: /root/repo/clippy.toml crates/nn/src/lib.rs crates/nn/src/encdec.rs crates/nn/src/inception.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/activation2.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/deconv2d.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/optim.rs crates/nn/src/optim_adam.rs crates/nn/src/param.rs crates/nn/src/serialize.rs Cargo.toml

/root/repo/clippy.toml:
crates/nn/src/lib.rs:
crates/nn/src/encdec.rs:
crates/nn/src/inception.rs:
crates/nn/src/init.rs:
crates/nn/src/layer.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/activation2.rs:
crates/nn/src/layers/conv2d.rs:
crates/nn/src/layers/deconv2d.rs:
crates/nn/src/layers/linear.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/layers/sequential.rs:
crates/nn/src/loss.rs:
crates/nn/src/optim.rs:
crates/nn/src/optim_adam.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
