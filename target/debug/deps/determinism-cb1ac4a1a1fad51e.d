/root/repo/target/debug/deps/determinism-cb1ac4a1a1fad51e.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-cb1ac4a1a1fad51e: tests/determinism.rs

tests/determinism.rs:
