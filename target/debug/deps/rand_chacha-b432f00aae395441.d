/root/repo/target/debug/deps/rand_chacha-b432f00aae395441.d: /root/repo/clippy.toml vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-b432f00aae395441.rmeta: /root/repo/clippy.toml vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
