/root/repo/target/debug/deps/proptests-26d816ebd32d16ad.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-26d816ebd32d16ad: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
