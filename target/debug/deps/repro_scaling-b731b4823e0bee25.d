/root/repo/target/debug/deps/repro_scaling-b731b4823e0bee25.d: crates/bench/src/bin/repro_scaling.rs

/root/repo/target/debug/deps/repro_scaling-b731b4823e0bee25: crates/bench/src/bin/repro_scaling.rs

crates/bench/src/bin/repro_scaling.rs:
