/root/repo/target/debug/deps/rhsd_tensor-168f628fbf4d682c.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

/root/repo/target/debug/deps/librhsd_tensor-168f628fbf4d682c.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

/root/repo/target/debug/deps/librhsd_tensor-168f628fbf4d682c.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/invariants.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/deconv.rs:
crates/tensor/src/ops/elementwise.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/reduce.rs:
crates/tensor/src/ops/softmax.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/workspace.rs:
