/root/repo/target/debug/deps/proptests-867574a6e5ec28ba.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-867574a6e5ec28ba: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
