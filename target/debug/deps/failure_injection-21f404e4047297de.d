/root/repo/target/debug/deps/failure_injection-21f404e4047297de.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-21f404e4047297de: tests/failure_injection.rs

tests/failure_injection.rs:
