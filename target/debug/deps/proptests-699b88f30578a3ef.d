/root/repo/target/debug/deps/proptests-699b88f30578a3ef.d: crates/data/tests/proptests.rs

/root/repo/target/debug/deps/proptests-699b88f30578a3ef: crates/data/tests/proptests.rs

crates/data/tests/proptests.rs:
