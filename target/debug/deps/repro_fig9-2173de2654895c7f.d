/root/repo/target/debug/deps/repro_fig9-2173de2654895c7f.d: /root/repo/clippy.toml crates/bench/src/bin/repro_fig9.rs Cargo.toml

/root/repo/target/debug/deps/librepro_fig9-2173de2654895c7f.rmeta: /root/repo/clippy.toml crates/bench/src/bin/repro_fig9.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/repro_fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
