/root/repo/target/debug/deps/repro_fig10-d6a0ebf638891879.d: crates/bench/src/bin/repro_fig10.rs

/root/repo/target/debug/deps/repro_fig10-d6a0ebf638891879: crates/bench/src/bin/repro_fig10.rs

crates/bench/src/bin/repro_fig10.rs:
