/root/repo/target/debug/deps/ledger_integration-4392ceec390843be.d: tests/ledger_integration.rs

/root/repo/target/debug/deps/ledger_integration-4392ceec390843be: tests/ledger_integration.rs

tests/ledger_integration.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
