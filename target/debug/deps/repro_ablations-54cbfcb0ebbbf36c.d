/root/repo/target/debug/deps/repro_ablations-54cbfcb0ebbbf36c.d: crates/bench/src/bin/repro_ablations.rs

/root/repo/target/debug/deps/repro_ablations-54cbfcb0ebbbf36c: crates/bench/src/bin/repro_ablations.rs

crates/bench/src/bin/repro_ablations.rs:
