/root/repo/target/debug/deps/rhsd-78cc6a285333024b.d: src/bin/rhsd.rs

/root/repo/target/debug/deps/rhsd-78cc6a285333024b: src/bin/rhsd.rs

src/bin/rhsd.rs:
