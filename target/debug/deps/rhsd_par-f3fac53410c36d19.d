/root/repo/target/debug/deps/rhsd_par-f3fac53410c36d19.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/librhsd_par-f3fac53410c36d19.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/librhsd_par-f3fac53410c36d19.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
