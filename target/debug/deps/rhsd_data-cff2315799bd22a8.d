/root/repo/target/debug/deps/rhsd_data-cff2315799bd22a8.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs

/root/repo/target/debug/deps/rhsd_data-cff2315799bd22a8: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/bbox.rs:
crates/data/src/benchmark.rs:
crates/data/src/clips.rs:
crates/data/src/region.rs:
crates/data/src/region_cache.rs:
