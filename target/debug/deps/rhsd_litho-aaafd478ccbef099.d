/root/repo/target/debug/deps/rhsd_litho-aaafd478ccbef099.d: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

/root/repo/target/debug/deps/librhsd_litho-aaafd478ccbef099.rlib: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

/root/repo/target/debug/deps/librhsd_litho-aaafd478ccbef099.rmeta: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

crates/litho/src/lib.rs:
crates/litho/src/aerial.rs:
crates/litho/src/cd.rs:
crates/litho/src/hotspot.rs:
crates/litho/src/kernel.rs:
crates/litho/src/resist.rs:
crates/litho/src/window.rs:
