/root/repo/target/debug/deps/repro_ablations-655b7e9d729594b1.d: crates/bench/src/bin/repro_ablations.rs

/root/repo/target/debug/deps/repro_ablations-655b7e9d729594b1: crates/bench/src/bin/repro_ablations.rs

crates/bench/src/bin/repro_ablations.rs:
