/root/repo/target/debug/deps/rhsd_layout-087addc5392ca38e.d: crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs

/root/repo/target/debug/deps/rhsd_layout-087addc5392ca38e: crates/layout/src/lib.rs crates/layout/src/drc.rs crates/layout/src/geom.rs crates/layout/src/io.rs crates/layout/src/layout.rs crates/layout/src/polygon.rs crates/layout/src/raster.rs crates/layout/src/synth/mod.rs crates/layout/src/synth/cases.rs crates/layout/src/synth/generator.rs crates/layout/src/synth/rules.rs

crates/layout/src/lib.rs:
crates/layout/src/drc.rs:
crates/layout/src/geom.rs:
crates/layout/src/io.rs:
crates/layout/src/layout.rs:
crates/layout/src/polygon.rs:
crates/layout/src/raster.rs:
crates/layout/src/synth/mod.rs:
crates/layout/src/synth/cases.rs:
crates/layout/src/synth/generator.rs:
crates/layout/src/synth/rules.rs:
