/root/repo/target/debug/deps/dbg_scan-bb395591b2b8e61c.d: src/bin/dbg_scan.rs

/root/repo/target/debug/deps/dbg_scan-bb395591b2b8e61c: src/bin/dbg_scan.rs

src/bin/dbg_scan.rs:
