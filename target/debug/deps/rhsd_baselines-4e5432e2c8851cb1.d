/root/repo/target/debug/deps/rhsd_baselines-4e5432e2c8851cb1.d: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

/root/repo/target/debug/deps/librhsd_baselines-4e5432e2c8851cb1.rlib: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

/root/repo/target/debug/deps/librhsd_baselines-4e5432e2c8851cb1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dct.rs:
crates/baselines/src/eval.rs:
crates/baselines/src/generic.rs:
crates/baselines/src/tcad18.rs:
