/root/repo/target/debug/deps/rhsd_tensor-257de6ab8326a2c0.d: /root/repo/clippy.toml crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_tensor-257de6ab8326a2c0.rmeta: /root/repo/clippy.toml crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs Cargo.toml

/root/repo/clippy.toml:
crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/invariants.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/deconv.rs:
crates/tensor/src/ops/elementwise.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/reduce.rs:
crates/tensor/src/ops/softmax.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
