/root/repo/target/debug/deps/rhsd_data-cdbf1526b122aa1b.d: /root/repo/clippy.toml crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_data-cdbf1526b122aa1b.rmeta: /root/repo/clippy.toml crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs Cargo.toml

/root/repo/clippy.toml:
crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/bbox.rs:
crates/data/src/benchmark.rs:
crates/data/src/clips.rs:
crates/data/src/region.rs:
crates/data/src/region_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
