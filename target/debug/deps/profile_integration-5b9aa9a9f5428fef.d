/root/repo/target/debug/deps/profile_integration-5b9aa9a9f5428fef.d: tests/profile_integration.rs

/root/repo/target/debug/deps/profile_integration-5b9aa9a9f5428fef: tests/profile_integration.rs

tests/profile_integration.rs:
