/root/repo/target/debug/deps/obs_integration-6cd5f2b28b5a116e.d: tests/obs_integration.rs

/root/repo/target/debug/deps/obs_integration-6cd5f2b28b5a116e: tests/obs_integration.rs

tests/obs_integration.rs:
