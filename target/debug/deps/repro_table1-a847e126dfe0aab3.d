/root/repo/target/debug/deps/repro_table1-a847e126dfe0aab3.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/debug/deps/repro_table1-a847e126dfe0aab3: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
