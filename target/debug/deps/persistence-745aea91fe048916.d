/root/repo/target/debug/deps/persistence-745aea91fe048916.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-745aea91fe048916: tests/persistence.rs

tests/persistence.rs:
