/root/repo/target/debug/deps/rhsd_bench-f3f4d39a67bf7604.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

/root/repo/target/debug/deps/librhsd_bench-f3f4d39a67bf7604.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

/root/repo/target/debug/deps/librhsd_bench-f3f4d39a67bf7604.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/table.rs:
crates/bench/src/viz.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
