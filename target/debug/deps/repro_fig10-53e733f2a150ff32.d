/root/repo/target/debug/deps/repro_fig10-53e733f2a150ff32.d: crates/bench/src/bin/repro_fig10.rs

/root/repo/target/debug/deps/repro_fig10-53e733f2a150ff32: crates/bench/src/bin/repro_fig10.rs

crates/bench/src/bin/repro_fig10.rs:
