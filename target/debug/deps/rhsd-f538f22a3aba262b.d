/root/repo/target/debug/deps/rhsd-f538f22a3aba262b.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librhsd-f538f22a3aba262b.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
