/root/repo/target/debug/deps/xtask-45882e0064ad69c4.d: xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs

/root/repo/target/debug/deps/xtask-45882e0064ad69c4: xtask/src/main.rs xtask/src/bench_diff.rs xtask/src/lint/mod.rs xtask/src/lint/rules.rs xtask/src/lint/source.rs xtask/src/microbench.rs xtask/src/report.rs

xtask/src/main.rs:
xtask/src/bench_diff.rs:
xtask/src/lint/mod.rs:
xtask/src/lint/rules.rs:
xtask/src/lint/source.rs:
xtask/src/microbench.rs:
xtask/src/report.rs:
