/root/repo/target/debug/deps/proptests-e8ff629220489df5.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e8ff629220489df5: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
