/root/repo/target/debug/deps/repro_table1-0a436c7e31f2768d.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/debug/deps/repro_table1-0a436c7e31f2768d: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
