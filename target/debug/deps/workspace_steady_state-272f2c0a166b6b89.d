/root/repo/target/debug/deps/workspace_steady_state-272f2c0a166b6b89.d: tests/workspace_steady_state.rs

/root/repo/target/debug/deps/workspace_steady_state-272f2c0a166b6b89: tests/workspace_steady_state.rs

tests/workspace_steady_state.rs:
