/root/repo/target/debug/deps/rhsd_bench-00311e4f913bf009.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

/root/repo/target/debug/deps/librhsd_bench-00311e4f913bf009.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

/root/repo/target/debug/deps/librhsd_bench-00311e4f913bf009.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/table.rs:
crates/bench/src/viz.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
