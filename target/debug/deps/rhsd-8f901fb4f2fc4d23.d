/root/repo/target/debug/deps/rhsd-8f901fb4f2fc4d23.d: src/lib.rs

/root/repo/target/debug/deps/rhsd-8f901fb4f2fc4d23: src/lib.rs

src/lib.rs:
