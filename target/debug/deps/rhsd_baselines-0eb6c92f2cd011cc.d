/root/repo/target/debug/deps/rhsd_baselines-0eb6c92f2cd011cc.d: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

/root/repo/target/debug/deps/librhsd_baselines-0eb6c92f2cd011cc.rlib: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

/root/repo/target/debug/deps/librhsd_baselines-0eb6c92f2cd011cc.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dct.rs:
crates/baselines/src/eval.rs:
crates/baselines/src/generic.rs:
crates/baselines/src/tcad18.rs:
