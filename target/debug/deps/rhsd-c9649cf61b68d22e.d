/root/repo/target/debug/deps/rhsd-c9649cf61b68d22e.d: src/bin/rhsd.rs

/root/repo/target/debug/deps/rhsd-c9649cf61b68d22e: src/bin/rhsd.rs

src/bin/rhsd.rs:
