/root/repo/target/debug/deps/rhsd_core-71f1f5d942ac7fa3.d: crates/core/src/lib.rs crates/core/src/anchor.rs crates/core/src/boxcode.rs crates/core/src/config.rs crates/core/src/cpn.rs crates/core/src/detector.rs crates/core/src/extractor.rs crates/core/src/feature_cache.rs crates/core/src/hnms.rs crates/core/src/loss.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/persist.rs crates/core/src/pruning.rs crates/core/src/refine.rs crates/core/src/roc.rs crates/core/src/train.rs

/root/repo/target/debug/deps/librhsd_core-71f1f5d942ac7fa3.rlib: crates/core/src/lib.rs crates/core/src/anchor.rs crates/core/src/boxcode.rs crates/core/src/config.rs crates/core/src/cpn.rs crates/core/src/detector.rs crates/core/src/extractor.rs crates/core/src/feature_cache.rs crates/core/src/hnms.rs crates/core/src/loss.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/persist.rs crates/core/src/pruning.rs crates/core/src/refine.rs crates/core/src/roc.rs crates/core/src/train.rs

/root/repo/target/debug/deps/librhsd_core-71f1f5d942ac7fa3.rmeta: crates/core/src/lib.rs crates/core/src/anchor.rs crates/core/src/boxcode.rs crates/core/src/config.rs crates/core/src/cpn.rs crates/core/src/detector.rs crates/core/src/extractor.rs crates/core/src/feature_cache.rs crates/core/src/hnms.rs crates/core/src/loss.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/persist.rs crates/core/src/pruning.rs crates/core/src/refine.rs crates/core/src/roc.rs crates/core/src/train.rs

crates/core/src/lib.rs:
crates/core/src/anchor.rs:
crates/core/src/boxcode.rs:
crates/core/src/config.rs:
crates/core/src/cpn.rs:
crates/core/src/detector.rs:
crates/core/src/extractor.rs:
crates/core/src/feature_cache.rs:
crates/core/src/hnms.rs:
crates/core/src/loss.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/persist.rs:
crates/core/src/pruning.rs:
crates/core/src/refine.rs:
crates/core/src/roc.rs:
crates/core/src/train.rs:
