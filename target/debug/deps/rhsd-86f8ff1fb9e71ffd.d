/root/repo/target/debug/deps/rhsd-86f8ff1fb9e71ffd.d: src/bin/rhsd.rs

/root/repo/target/debug/deps/rhsd-86f8ff1fb9e71ffd: src/bin/rhsd.rs

src/bin/rhsd.rs:
