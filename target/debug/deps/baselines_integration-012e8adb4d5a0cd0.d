/root/repo/target/debug/deps/baselines_integration-012e8adb4d5a0cd0.d: tests/baselines_integration.rs

/root/repo/target/debug/deps/baselines_integration-012e8adb4d5a0cd0: tests/baselines_integration.rs

tests/baselines_integration.rs:
