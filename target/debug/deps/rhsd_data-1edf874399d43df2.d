/root/repo/target/debug/deps/rhsd_data-1edf874399d43df2.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs

/root/repo/target/debug/deps/librhsd_data-1edf874399d43df2.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs

/root/repo/target/debug/deps/librhsd_data-1edf874399d43df2.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/bbox.rs crates/data/src/benchmark.rs crates/data/src/clips.rs crates/data/src/region.rs crates/data/src/region_cache.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/bbox.rs:
crates/data/src/benchmark.rs:
crates/data/src/clips.rs:
crates/data/src/region.rs:
crates/data/src/region_cache.rs:
