/root/repo/target/debug/deps/proptests-5dadf2008394d2f2.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5dadf2008394d2f2: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
