/root/repo/target/debug/deps/rhsd_litho-d15535f602fd669d.d: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

/root/repo/target/debug/deps/rhsd_litho-d15535f602fd669d: crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs

crates/litho/src/lib.rs:
crates/litho/src/aerial.rs:
crates/litho/src/cd.rs:
crates/litho/src/hotspot.rs:
crates/litho/src/kernel.rs:
crates/litho/src/resist.rs:
crates/litho/src/window.rs:
