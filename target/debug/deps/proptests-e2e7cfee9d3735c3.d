/root/repo/target/debug/deps/proptests-e2e7cfee9d3735c3.d: crates/baselines/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e2e7cfee9d3735c3: crates/baselines/tests/proptests.rs

crates/baselines/tests/proptests.rs:
