/root/repo/target/debug/deps/substrate_integration-e3c0685692af5350.d: tests/substrate_integration.rs

/root/repo/target/debug/deps/substrate_integration-e3c0685692af5350: tests/substrate_integration.rs

tests/substrate_integration.rs:
