/root/repo/target/debug/deps/rhsd_par-a9ed6e0980162bab.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/rhsd_par-a9ed6e0980162bab: crates/par/src/lib.rs

crates/par/src/lib.rs:
