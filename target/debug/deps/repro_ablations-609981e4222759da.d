/root/repo/target/debug/deps/repro_ablations-609981e4222759da.d: /root/repo/clippy.toml crates/bench/src/bin/repro_ablations.rs Cargo.toml

/root/repo/target/debug/deps/librepro_ablations-609981e4222759da.rmeta: /root/repo/clippy.toml crates/bench/src/bin/repro_ablations.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/repro_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
