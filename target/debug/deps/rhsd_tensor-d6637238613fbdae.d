/root/repo/target/debug/deps/rhsd_tensor-d6637238613fbdae.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

/root/repo/target/debug/deps/librhsd_tensor-d6637238613fbdae.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

/root/repo/target/debug/deps/librhsd_tensor-d6637238613fbdae.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/invariants.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/deconv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/workspace.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/invariants.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/deconv.rs:
crates/tensor/src/ops/elementwise.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/reduce.rs:
crates/tensor/src/ops/softmax.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/workspace.rs:
