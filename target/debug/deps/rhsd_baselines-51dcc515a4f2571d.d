/root/repo/target/debug/deps/rhsd_baselines-51dcc515a4f2571d.d: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

/root/repo/target/debug/deps/rhsd_baselines-51dcc515a4f2571d: crates/baselines/src/lib.rs crates/baselines/src/dct.rs crates/baselines/src/eval.rs crates/baselines/src/generic.rs crates/baselines/src/tcad18.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dct.rs:
crates/baselines/src/eval.rs:
crates/baselines/src/generic.rs:
crates/baselines/src/tcad18.rs:
