/root/repo/target/debug/deps/rhsd_bench-4dcc7ceae532b702.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_bench-4dcc7ceae532b702.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/pipeline.rs crates/bench/src/table.rs crates/bench/src/viz.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/table.rs:
crates/bench/src/viz.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
