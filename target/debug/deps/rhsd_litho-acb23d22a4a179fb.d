/root/repo/target/debug/deps/rhsd_litho-acb23d22a4a179fb.d: /root/repo/clippy.toml crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs Cargo.toml

/root/repo/target/debug/deps/librhsd_litho-acb23d22a4a179fb.rmeta: /root/repo/clippy.toml crates/litho/src/lib.rs crates/litho/src/aerial.rs crates/litho/src/cd.rs crates/litho/src/hotspot.rs crates/litho/src/kernel.rs crates/litho/src/resist.rs crates/litho/src/window.rs Cargo.toml

/root/repo/clippy.toml:
crates/litho/src/lib.rs:
crates/litho/src/aerial.rs:
crates/litho/src/cd.rs:
crates/litho/src/hotspot.rs:
crates/litho/src/kernel.rs:
crates/litho/src/resist.rs:
crates/litho/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
