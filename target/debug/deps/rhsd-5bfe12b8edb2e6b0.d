/root/repo/target/debug/deps/rhsd-5bfe12b8edb2e6b0.d: src/lib.rs

/root/repo/target/debug/deps/librhsd-5bfe12b8edb2e6b0.rlib: src/lib.rs

/root/repo/target/debug/deps/librhsd-5bfe12b8edb2e6b0.rmeta: src/lib.rs

src/lib.rs:
