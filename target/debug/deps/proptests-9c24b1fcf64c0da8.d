/root/repo/target/debug/deps/proptests-9c24b1fcf64c0da8.d: crates/layout/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9c24b1fcf64c0da8: crates/layout/tests/proptests.rs

crates/layout/tests/proptests.rs:
