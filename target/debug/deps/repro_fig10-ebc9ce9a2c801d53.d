/root/repo/target/debug/deps/repro_fig10-ebc9ce9a2c801d53.d: /root/repo/clippy.toml crates/bench/src/bin/repro_fig10.rs Cargo.toml

/root/repo/target/debug/deps/librepro_fig10-ebc9ce9a2c801d53.rmeta: /root/repo/clippy.toml crates/bench/src/bin/repro_fig10.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/repro_fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
