//! Training diagnostics: loss decomposition, feature-spread collapse
//! detection, and score-separation statistics.
//!
//! These are the instruments that uncovered the demo-scale training
//! pathologies documented in DESIGN.md §1.1 (bias-shortcut feature
//! collapse, exploding regression gradients); they are kept as a runnable
//! example so downstream users adapting the stack can re-check the same
//! invariants.
//!
//! Run with: `cargo run --release --example diagnostics`

use rand::SeedableRng;
use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{test_regions, RegionConfig, RegionSample};
use rhsd::nn::Layer;
use rhsd_bench::pipeline::{build_benchmarks, merged_train_regions};

/// Mean absolute difference of backbone feature maps across regions.
///
/// Healthy networks keep this well above zero; a value near zero means
/// the features have collapsed to an input-independent constant (the
/// pathology leaky ReLUs guard against — DESIGN.md §1.1).
fn feature_spread(net: &mut RhsdNetwork, regions: &[RegionSample]) -> f32 {
    let feats: Vec<_> = regions
        .iter()
        .take(4)
        .map(|r| net.extractor_mut().forward(&r.image))
        .collect();
    let mut d = 0.0f32;
    let mut n = 0;
    for i in 0..feats.len() {
        for j in i + 1..feats.len() {
            d += feats[i].zip_with(&feats[j], |a, b| (a - b).abs()).mean();
            n += 1;
        }
    }
    d / n.max(1) as f32
}

fn main() {
    let benches = build_benchmarks();
    let region = RegionConfig::demo();
    let samples = merged_train_regions(&benches, &region, true);
    let tests = test_regions(&benches[1], &region);

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(103);
    let mut net = RhsdNetwork::new(RhsdConfig::demo(), &mut rng);
    println!(
        "feature spread at init: {:.4} (must stay well above 0 through training)",
        feature_spread(&mut net, &tests)
    );

    let mut tc = TrainConfig::demo();
    tc.epochs = 10;
    let hist = rhsd::core::train(&mut net, &samples, &tc);
    for h in &hist {
        println!(
            "epoch {:>2}: total {:.3}  cpn_cls {:.3}  cpn_reg {:.3}  refine_cls {:.3}  lr {:.4}",
            h.epoch, h.mean_loss, h.mean_cpn_cls, h.mean_cpn_reg, h.mean_refine_cls, h.lr
        );
    }
    println!(
        "feature spread after training: {:.4}",
        feature_spread(&mut net, &tests)
    );

    // Score separation: the max stage-1 proposal score should be clearly
    // higher on regions that contain hotspots.
    let mut hot = Vec::new();
    let mut clean = Vec::new();
    for r in &tests {
        let m = net
            .proposals(&r.image)
            .iter()
            .map(|p| p.score)
            .fold(0.0f32, f32::max);
        if r.gt_clips.is_empty() {
            clean.push(m);
        } else {
            hot.push(m);
        }
    }
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    println!(
        "max stage-1 score: hotspot regions {:.3} vs clean regions {:.3}",
        avg(&hot),
        avg(&clean)
    );

    let mut det = RegionDetector::new(net, region);
    for b in &benches {
        let r = det.scan_test_half(b);
        println!("{}: {}", b.id.name(), r.evaluation);
    }
}
