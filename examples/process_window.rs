//! Process-window exploration: Bossung-style CD analysis of the geometry
//! classes the benchmarks contain — why tight gaps and narrow necks are
//! hotspots and nominal geometry is not.
//!
//! Run with: `cargo run --release --example process_window`

use rhsd::litho::cd::{measure_cd, process_window_cd, Cut};
use rhsd::litho::{simulate_print, ProcessWindow};
use rhsd::tensor::Tensor;

/// A horizontal wire of `width_px` pixels in a 64×64 raster.
fn wire(width_px: usize) -> Tensor {
    let y0 = 32 - width_px / 2;
    Tensor::from_fn([1, 64, 64], |c| {
        if c[1] >= y0 && c[1] < y0 + width_px {
            1.0
        } else {
            0.0
        }
    })
}

/// Two wire tips separated by `gap_px` pixels.
fn tip_to_tip(gap_px: usize) -> Tensor {
    Tensor::from_fn([1, 64, 64], |c| {
        let in_wire_band = c[1] >= 30 && c[1] < 34;
        let in_gap = c[2] >= 32 - gap_px / 2 && c[2] < 32 - gap_px / 2 + gap_px;
        if in_wire_band && !in_gap {
            1.0
        } else {
            0.0
        }
    })
}

fn main() {
    let pw = ProcessWindow::euv_default();
    const NM_PER_PX: f64 = 10.0;

    println!("== Wire CD through the process window (drawn width sweep) ==");
    println!(
        "{:>10} {:>24} {:>24} {:>24}",
        "drawn", "overexpose", "nominal", "underexpose"
    );
    for width_px in [2usize, 3, 4, 6] {
        let rows = process_window_cd(&wire(width_px), Cut::Vertical { x: 32 }, 32, &pw, NM_PER_PX);
        let fmt = |name: &str| {
            rows.iter()
                .find(|r| r.corner.starts_with(name))
                .map(|r| match r.cd_nm {
                    Some(cd) => format!("{cd:.0} nm"),
                    None => "VANISHED".to_owned(),
                })
                .unwrap_or_default()
        };
        println!(
            "{:>8}nm {:>24} {:>24} {:>24}",
            width_px * 10,
            fmt("overexpose"),
            fmt("nominal"),
            fmt("underexpose"),
        );
    }

    println!("\n== Tip-to-tip gap survival (bridge check) ==");
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "drawn gap", "overexpose", "nominal", "underexpose"
    );
    for gap_px in [2usize, 3, 6, 10] {
        let design = tip_to_tip(gap_px);
        let mut cols = Vec::new();
        for corner in pw.all_corners() {
            let printed = simulate_print(&design, &corner, NM_PER_PX);
            // the gap survives if the centre of the gap is NOT printed
            let bridged = measure_cd(&printed, Cut::Horizontal { y: 32 }, 32).is_some();
            cols.push(if bridged { "BRIDGED" } else { "open" });
        }
        println!(
            "{:>8}nm {:>16} {:>16} {:>16}",
            gap_px * 10,
            cols[1], // overexpose
            cols[0], // nominal
            cols[2], // underexpose
        );
    }

    println!(
        "\nThe hotspot ground truth of every benchmark comes from exactly\n\
         this physics: geometry whose printed connectivity flips at some\n\
         corner of the window is labelled a hotspot."
    );
}
