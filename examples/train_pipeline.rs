//! The full training pipeline with checkpointing and ablation switches —
//! the workflow a DFM team would run to produce a deployable detector.
//!
//! Run with:
//! `cargo run --release --example train_pipeline -- [--no-ed] [--no-l2] [--no-refine] [--epochs N]`

use rand::SeedableRng;
use rhsd::core::persist::{load_from_path, save_to_path};
use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::augment::{flip_region, Flip};
use rhsd::data::{train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |f: &str| args.iter().any(|a| a == f);
    let epochs = args
        .iter()
        .position(|a| a == "--epochs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);

    let mut cfg = RhsdConfig::demo();
    cfg.use_encoder_decoder = !flag("--no-ed");
    cfg.use_l2 = !flag("--no-l2");
    cfg.use_refinement = !flag("--no-refine");
    println!(
        "config: ED={} L2={} Refine={} epochs={epochs}",
        cfg.use_encoder_decoder, cfg.use_l2, cfg.use_refinement
    );

    // Merge all three evaluated cases' training halves (paper protocol)
    // and augment with flips.
    let region_cfg = RegionConfig::demo();
    let benches: Vec<Benchmark> = CaseId::EVALUATED
        .iter()
        .map(|&c| Benchmark::demo(c))
        .collect();
    let mut samples = Vec::new();
    for b in &benches {
        samples.extend(train_regions(b, &region_cfg));
    }
    let flipped: Vec<_> = samples
        .iter()
        .flat_map(|s| {
            [
                flip_region(s, Flip::Horizontal),
                flip_region(s, Flip::Vertical),
            ]
        })
        .collect();
    samples.extend(flipped);
    println!(
        "training on {} samples (with flip augmentation)…",
        samples.len()
    );

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2019);
    let mut net = RhsdNetwork::new(cfg, &mut rng);
    let mut tc = TrainConfig::demo();
    tc.epochs = epochs;
    let history = rhsd::core::train(&mut net, &samples, &tc);
    for h in &history {
        println!(
            "  epoch {:>2}: mean loss {:.4} (lr {:.4})",
            h.epoch, h.mean_loss, h.lr
        );
    }

    // Checkpoint to disk and restore — what a production flow would ship.
    let path = std::env::temp_dir().join("rhsd_model.json");
    save_to_path(&mut net, &path).expect("save checkpoint");
    println!("checkpoint written to {}", path.display());
    let restored = load_from_path(&path).expect("load checkpoint");

    // Evaluate the restored model on every case's unseen half.
    let mut detector = RegionDetector::new(restored, region_cfg);
    for b in &benches {
        let r = detector.scan_test_half(b);
        println!("{}: {}", b.id.name(), r.evaluation);
    }
}
