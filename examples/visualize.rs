//! Figure-9-style visualisation: renders a test region's ground truth and
//! a trained detector's output as SVG files.
//!
//! Run with: `cargo run --release --example visualize`
//! Output: `visualize_truth.svg`, `visualize_ours.svg`

use rand::SeedableRng;
use rhsd::baselines::LayoutClip;
use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{test_regions, train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;
use rhsd::layout::Rect;
use rhsd_bench::viz::{render_svg, viz_counts};

fn main() {
    println!("building benchmark Case3 and training a small model…");
    let bench = Benchmark::demo(CaseId::Case3);
    let region_cfg = RegionConfig::demo();
    let samples = train_regions(&bench, &region_cfg);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let mut net = RhsdNetwork::new(RhsdConfig::demo(), &mut rng);
    let mut tc = TrainConfig::demo();
    tc.epochs = 6;
    rhsd::core::train(&mut net, &samples, &tc);
    let mut detector = RegionDetector::new(net, region_cfg);

    // Pick the densest test region.
    let regions = test_regions(&bench, &region_cfg);
    let best = regions
        .iter()
        .max_by_key(|r| r.gt_clips.len())
        .expect("test regions exist");
    let hotspots = bench.hotspots_in(&best.window);
    println!(
        "visualising region {} with {} ground-truth hotspots",
        best.window,
        hotspots.len()
    );

    // Ground truth as perfect detections.
    let truth: Vec<LayoutClip> = hotspots
        .iter()
        .map(|p| LayoutClip {
            clip: Rect::centered(p.x, p.y, region_cfg.clip_nm(), region_cfg.clip_nm()),
            score: 1.0,
        })
        .collect();

    // The detector's view.
    let (dets, eval) = detector.detect_region(best);
    let ours: Vec<LayoutClip> = dets
        .iter()
        .map(|d| LayoutClip {
            clip: d.bbox.to_rect(&best.spec),
            score: d.score,
        })
        .collect();
    println!("detector result on this region: {eval}");

    for (tag, clips) in [("truth", &truth), ("ours", &ours)] {
        let svg = render_svg(&bench.layout, &best.window, clips, &hotspots, 0.4);
        let name = format!("visualize_{tag}.svg");
        std::fs::write(&name, svg).expect("write svg");
        let c = viz_counts(clips, &hotspots);
        println!(
            "{name}: detected {}, missed {}, false alarms {}",
            c.detected, c.missed, c.false_alarms
        );
    }
}
