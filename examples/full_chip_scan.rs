//! Full-chip scan contrast: the paper's motivating experiment — scanning
//! the same layout area with (a) the conventional overlapping clip flow
//! (Fig. 1) and (b) one-pass region-based detection (Fig. 2) — and
//! reporting the wall-clock difference.
//!
//! Run with: `cargo run --release --example full_chip_scan`

use rand::SeedableRng;
use rhsd::baselines::{Tcad18Config, Tcad18Detector};
use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork};
use rhsd::data::{clips::scan_windows, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;

fn main() {
    println!("building benchmark Case3…");
    let bench = Benchmark::demo(CaseId::Case3);
    let extent = bench.test_extent;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);

    // Region-based scan (untrained weights — this example measures the
    // *scan machinery*; see `quickstart` for a trained evaluation).
    let region_cfg = RegionConfig::demo();
    let net = RhsdNetwork::new(RhsdConfig::demo(), &mut rng);
    let mut ours = RegionDetector::new(net, region_cfg);
    let t0 = std::time::Instant::now();
    let result = ours.scan(&bench, &extent);
    let t_region = t0.elapsed().as_secs_f64();
    println!(
        "region-based: {:>5} network passes  {:>7.2}s",
        result.regions, t_region
    );

    // Conventional clip scan over the same area.
    let mut tcad = Tcad18Detector::new(Tcad18Config::demo(), &mut rng);
    let n_windows = scan_windows(&extent, tcad.config().clip_px).len();
    let t0 = std::time::Instant::now();
    let _ = tcad.scan(&bench, &extent);
    let t_clip = t0.elapsed().as_secs_f64();
    println!("clip-based:   {n_windows:>5} clip inferences  {t_clip:>7.2}s");

    println!(
        "\nspeedup of region-based over clip-based: {:.1}×",
        t_clip / t_region.max(1e-9)
    );
    println!(
        "(the paper reports ≈45× on average vs the TCAD'18 flow — the gap\n\
         comes from exactly this redundancy: {} overlapping clips to cover\n\
         what {} region passes cover once)",
        n_windows, result.regions
    );
}
