//! Quickstart: build a synthetic benchmark, train the region-based
//! hotspot detector on its training half, and evaluate on the unseen test
//! half.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rhsd::core::{RegionDetector, RhsdConfig, RhsdNetwork, TrainConfig};
use rhsd::data::{train_regions, Benchmark, RegionConfig};
use rhsd::layout::synth::CaseId;

fn main() {
    // 1. Build a lithography-labelled benchmark — the synthetic analogue
    //    of an ICCAD-2016 contest design. Ground-truth hotspots come from
    //    a process-window litho simulation (bridges and pinches).
    println!("building benchmark Case2 (layout synthesis + litho labelling)…");
    let bench = Benchmark::demo(CaseId::Case2);
    println!(
        "  {} hotspots total ({} train / {} test)",
        bench.defects.len(),
        bench.train_hotspots().len(),
        bench.test_hotspots().len()
    );

    // 2. Train the R-HSD network end-to-end on region samples.
    let region_cfg = RegionConfig::demo();
    let regions = train_regions(&bench, &region_cfg);
    println!("training on {} regions…", regions.len());
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2019);
    let mut net = RhsdNetwork::new(RhsdConfig::demo(), &mut rng);
    let mut tc = TrainConfig::demo();
    tc.epochs = 8;
    let history = rhsd::core::train(&mut net, &regions, &tc);
    for h in &history {
        println!("  epoch {:>2}: mean loss {:.4}", h.epoch, h.mean_loss);
    }

    // 3. Scan the test half — one feed-forward pass per region, multiple
    //    hotspots per pass (the paper's headline capability).
    let mut detector = RegionDetector::new(net, region_cfg);
    let t0 = std::time::Instant::now();
    let result = detector.scan_test_half(&bench);
    println!(
        "\ntest half: {} regions scanned in {:.2}s",
        result.regions,
        t0.elapsed().as_secs_f64()
    );
    println!("result: {}", result.evaluation);
    for d in result.detections.iter().take(5) {
        println!("  e.g. clip {} score {:.2}", d.clip, d.score);
    }
}
