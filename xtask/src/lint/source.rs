//! Source-file model for the lint rules.
//!
//! A [`SourceFile`] lexes the raw text once ([`crate::lint::lex`]) and
//! derives everything the rules need from the token stream:
//!
//! - the **token list** itself, for token-accurate rules;
//! - the **scope facts** ([`crate::lint::scope`]): fn items, test
//!   regions, loop bodies, `unsafe` sites;
//! - a **code mask** — the text with comment and string/char literal
//!   *contents* blanked to spaces (byte offsets and line numbers
//!   preserved) — kept for rules that still scan text, so that
//!   `// panic! is bad` or `"unwrap()"` in a string never match.
//!
//! The mask is now derived from real tokens rather than the old
//! byte-stripping heuristics, so raw strings with hashes, nested block
//! comments and `'a'`-vs-`&'a` ambiguities are all handled exactly.

use super::lex::{self, Kind, Token};
use super::scope::{self, Scopes};

/// One lint-relevant source file.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Raw file contents.
    pub raw: String,
    /// Contents with comment and literal contents blanked.
    pub code: String,
    /// The lexed token stream (tiles `raw` exactly).
    pub tokens: Vec<Token>,
    /// Item/scope facts derived from the tokens.
    pub scopes: Scopes,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Builds the model from raw text.
    pub fn new(rel_path: impl Into<String>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let tokens = lex::lex(&raw);
        let scopes = scope::analyze(&raw, &tokens);
        let code = mask(&raw, &tokens);
        let mut line_starts = vec![0];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            rel_path: rel_path.into(),
            raw,
            code,
            tokens,
            scopes,
            line_starts,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether a byte offset falls inside a test-only item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.scopes.in_test(offset)
    }

    /// The raw text of a 1-based line (without the trailing newline).
    pub fn raw_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.raw.len());
        &self.raw[start..end.max(start)]
    }

    /// Whether a violation of `rule` at 1-based `line` carries an inline
    /// `// lint:allow(<rule>)` escape hatch (same line or the line above).
    pub fn inline_allowed(&self, rule: &str, line: usize) -> bool {
        let marker = format!("lint:allow({rule})");
        let mut lines = vec![line];
        if line > 1 {
            lines.push(line - 1);
        }
        lines.iter().any(|&l| self.raw_line(l).contains(&marker))
    }

    /// Every inline `// lint:allow(<rule>)` marker in the file, as
    /// `(rule, 1-based line)` pairs — input to the stale-marker gate.
    pub fn inline_allow_markers(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for (idx, _) in self.line_starts.iter().enumerate() {
            let line = idx + 1;
            let text = self.raw_line(line);
            let mut rest = text;
            while let Some(p) = rest.find("lint:allow(") {
                let tail = &rest[p + "lint:allow(".len()..];
                if let Some(close) = tail.find(')') {
                    let rule = &tail[..close];
                    if !rule.is_empty() && rule.chars().all(|c| c.is_ascii_alphanumeric()) {
                        out.push((rule.to_string(), line));
                    }
                    rest = &tail[close + 1..];
                } else {
                    break;
                }
            }
        }
        out
    }

    /// The non-trivia tokens, in order.
    pub fn significant(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| !t.is_trivia())
    }
}

/// Blanks comment and literal contents to spaces, preserving layout.
///
/// Delimiting quotes of string/char literals are kept so the mask still
/// reads as a literal; lifetimes and all real code pass through.
fn mask(raw: &str, tokens: &[Token]) -> String {
    let bytes = raw.as_bytes();
    let mut out = bytes.to_vec();
    for t in tokens {
        match t.kind {
            Kind::LineComment | Kind::BlockComment => blank_range(&mut out, t.start, t.end),
            Kind::Str
            | Kind::RawStr
            | Kind::ByteStr
            | Kind::RawByteStr
            | Kind::Char
            | Kind::Byte => {
                let first_q = (t.start..t.end).find(|&i| bytes[i] == b'"' || bytes[i] == b'\'');
                let last_q = (t.start..t.end)
                    .rev()
                    .find(|&i| bytes[i] == b'"' || bytes[i] == b'\'');
                for i in t.start..t.end {
                    if Some(i) != first_q && Some(i) != last_q {
                        blank(&mut out, i);
                    }
                }
            }
            _ => {}
        }
    }
    // Blanking only replaces bytes with ASCII spaces inside token spans,
    // and newlines are preserved, so the result is valid UTF-8 with the
    // exact byte length and line structure of the input.
    String::from_utf8(out).unwrap_or_default()
}

fn blank_range(out: &mut [u8], start: usize, end: usize) {
    for i in start..end {
        blank(out, i);
    }
}

fn blank(out: &mut [u8], i: usize) {
    if !out[i].is_ascii_whitespace() {
        out[i] = b' ';
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let f = SourceFile::new("a.rs", "let x = 1; // unwrap()\n/* panic! */ let y;\n");
        assert!(!f.code.contains("unwrap"));
        assert!(!f.code.contains("panic"));
        assert!(f.code.contains("let x = 1;"));
        assert!(f.code.contains("let y;"));
    }

    #[test]
    fn masks_string_and_char_literals_but_keeps_lifetimes() {
        let f = SourceFile::new(
            "a.rs",
            "fn f<'a>(s: &'a str) { let c = 'x'; let s = \"unwrap()\"; }",
        );
        assert!(!f.code.contains("unwrap"));
        assert!(f.code.contains("fn f<'a>(s: &'a str)"));
    }

    #[test]
    fn masks_raw_strings() {
        let f = SourceFile::new("a.rs", "let s = r#\"panic!()\"#;");
        assert!(!f.code.contains("panic"));
    }

    #[test]
    fn masks_nested_block_comments_exactly() {
        // The old byte-stripper got this right; the lexer must too.
        let f = SourceFile::new("a.rs", "/* outer /* panic! */ still comment */ let x;");
        assert!(!f.code.contains("panic"));
        assert!(f.code.contains("let x;"));
    }

    #[test]
    fn mask_preserves_offsets_and_lines() {
        let src = "let a = \"two\nlines\";\nlet b = 1; // c\n";
        let f = SourceFile::new("a.rs", src);
        assert_eq!(f.code.len(), src.len());
        assert_eq!(
            f.code.matches('\n').count(),
            src.matches('\n').count(),
            "newlines inside literals/comments must survive masking"
        );
        assert_eq!(f.line_of(src.find("let b").expect("fixture")), 3);
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::new("a.rs", src);
        let unwrap_at = src.find("unwrap").expect("fixture");
        assert!(f.in_test(unwrap_at));
        assert!(!f.in_test(src.find("fn lib()").expect("fixture")));
        assert!(!f.in_test(src.find("fn lib2").expect("fixture")));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() {}\n";
        let f = SourceFile::new("a.rs", src);
        assert!(f.in_test(src.find("unwrap").expect("fixture")));
        assert!(!f.in_test(src.find("fn lib").expect("fixture")));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let f = SourceFile::new("a.rs", "a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
    }

    #[test]
    fn inline_allow_matches_same_and_previous_line() {
        let src = "x(); // lint:allow(L1)\ny();\nw();\n// lint:allow(L3)\nz();\n";
        let f = SourceFile::new("a.rs", src);
        assert!(f.inline_allowed("L1", 1));
        assert!(f.inline_allowed("L1", 2), "marker excuses the next line");
        assert!(!f.inline_allowed("L1", 3));
        assert!(f.inline_allowed("L3", 5));
        assert!(!f.inline_allowed("L1", 5));
    }

    #[test]
    fn inline_allow_markers_are_enumerated() {
        let src = "x(); // lint:allow(L1)\ny();\n// lint:allow(L9) queue guard drops at stmt end\n";
        let f = SourceFile::new("a.rs", src);
        assert_eq!(
            f.inline_allow_markers(),
            vec![("L1".to_string(), 1), ("L9".to_string(), 3)]
        );
    }
}
