//! Source-file model for the lint rules.
//!
//! A [`SourceFile`] holds the raw text plus a *code mask*: a copy of the
//! text where comments and string/char literals are blanked to spaces
//! (byte offsets and line numbers are preserved). Rules scan the mask so
//! that `// panic! is bad` or `"unwrap()"` in a string never match.
//!
//! It also computes *test regions*: the byte ranges of items annotated
//! `#[cfg(test)]` or `#[test]`, so rules can skip test-only code.

/// One lint-relevant source file.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Raw file contents.
    pub raw: String,
    /// Contents with comments and string/char literals blanked.
    pub code: String,
    /// Byte ranges (half-open) covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Builds the model from raw text.
    pub fn new(rel_path: impl Into<String>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let code = mask_comments_and_strings(&raw);
        let test_regions = find_test_regions(&code);
        let mut line_starts = vec![0];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            rel_path: rel_path.into(),
            raw,
            code,
            test_regions,
            line_starts,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether a byte offset falls inside a test-only item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= offset && offset < b)
    }

    /// The raw text of a 1-based line (without the trailing newline).
    pub fn raw_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.raw.len());
        &self.raw[start..end.max(start)]
    }

    /// Whether a violation of `rule` at 1-based `line` carries an inline
    /// `// lint:allow(<rule>)` escape hatch (same line or the line above).
    pub fn inline_allowed(&self, rule: &str, line: usize) -> bool {
        let marker = format!("lint:allow({rule})");
        let mut lines = vec![line];
        if line > 1 {
            lines.push(line - 1);
        }
        lines.iter().any(|&l| self.raw_line(l).contains(&marker))
    }
}

/// Blanks comments and string/char literals to spaces, preserving layout.
fn mask_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment (incl. doc comments): blank to end of line.
                // Doc text is recovered by rules from `raw` when needed.
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank(&mut out, i);
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                blank(&mut out, i);
                blank(&mut out, i + 1);
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                    } else {
                        blank(&mut out, i);
                        i += 1;
                    }
                }
            }
            b'"' => {
                // String literal: keep the quotes, blank the contents.
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                    } else {
                        blank(&mut out, i);
                        i += 1;
                    }
                }
                i += 1; // closing quote
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let (hashes, body_start) = raw_string_open(bytes, i);
                for k in i + 1..body_start {
                    blank(&mut out, k);
                }
                i = body_start;
                let close: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < bytes.len() && !bytes[i..].starts_with(&close) {
                    blank(&mut out, i);
                    i += 1;
                }
                i += close.len();
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal closes with a
                // `'` after one (possibly escaped) character.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        blank(&mut out, i);
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    blank(&mut out, i + 1);
                    i += 3;
                } else {
                    i += 1; // lifetime: leave as-is
                }
            }
            _ => i += 1,
        }
    }
    // Invalid UTF-8 cannot arise: we only overwrite whole multi-byte
    // sequences inside literals/comments with ASCII spaces.
    String::from_utf8(out).unwrap_or_default()
}

fn blank(out: &mut [u8], i: usize) {
    if !out[i].is_ascii_whitespace() {
        out[i] = b' ';
    }
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"..."` / `r#"..."#` — and not part of an identifier like `for`.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn raw_string_open(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i + 1;
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1) // past the opening quote
}

/// Finds byte ranges of items introduced by `#[cfg(test)]` or `#[test]`.
///
/// The range starts at the attribute and ends at the matching close brace
/// of the item's body (brace-depth tracking over the code mask).
fn find_test_regions(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut regions = Vec::new();
    let mut depth: i32 = 0;
    // (attr offset, depth at attr) for a test attribute awaiting its body
    let mut pending: Option<(usize, i32)> = None;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'#' if pending.is_none() && is_test_attr(code, i) => {
                pending = Some((i, depth));
                i += 1;
            }
            b'{' => {
                depth += 1;
                i += 1;
                if let Some((start, d)) = pending {
                    if depth == d + 1 {
                        // body of the annotated item: find matching close
                        let mut j = i;
                        let mut bd = depth;
                        while j < bytes.len() && bd > d {
                            match bytes[j] {
                                b'{' => bd += 1,
                                b'}' => bd -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        regions.push((start, j));
                        pending = None;
                        depth = d;
                        i = j;
                    }
                }
            }
            b'}' => {
                depth -= 1;
                i += 1;
            }
            b';' => {
                // An item ending in `;` before any brace (e.g. a `use`)
                // cancels a pending attribute only if we are still at the
                // attribute's depth.
                if let Some((_, d)) = pending {
                    if depth == d {
                        pending = None;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    regions
}

fn is_test_attr(code: &str, i: usize) -> bool {
    let rest = &code[i..];
    let compact: String = rest
        .chars()
        .take(24)
        .filter(|c| !c.is_whitespace())
        .collect();
    compact.starts_with("#[cfg(test)]")
        || compact.starts_with("#[test]")
        || compact.starts_with("#[cfg(all(test")
        || compact.starts_with("#[cfg(any(test")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let f = SourceFile::new("a.rs", "let x = 1; // unwrap()\n/* panic! */ let y;\n");
        assert!(!f.code.contains("unwrap"));
        assert!(!f.code.contains("panic"));
        assert!(f.code.contains("let x = 1;"));
        assert!(f.code.contains("let y;"));
    }

    #[test]
    fn masks_string_and_char_literals_but_keeps_lifetimes() {
        let f = SourceFile::new(
            "a.rs",
            "fn f<'a>(s: &'a str) { let c = 'x'; let s = \"unwrap()\"; }",
        );
        assert!(!f.code.contains("unwrap"));
        assert!(f.code.contains("fn f<'a>(s: &'a str)"));
    }

    #[test]
    fn masks_raw_strings() {
        let f = SourceFile::new("a.rs", "let s = r#\"panic!()\"#;");
        assert!(!f.code.contains("panic"));
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::new("a.rs", src);
        let unwrap_at = src.find("unwrap").expect("fixture");
        assert!(f.in_test(unwrap_at));
        assert!(!f.in_test(src.find("fn lib()").expect("fixture")));
        assert!(!f.in_test(src.find("fn lib2").expect("fixture")));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() {}\n";
        let f = SourceFile::new("a.rs", src);
        assert!(f.in_test(src.find("unwrap").expect("fixture")));
        assert!(!f.in_test(src.find("fn lib").expect("fixture")));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let f = SourceFile::new("a.rs", "a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
    }

    #[test]
    fn inline_allow_matches_same_and_previous_line() {
        let src = "x(); // lint:allow(L1)\ny();\nw();\n// lint:allow(L3)\nz();\n";
        let f = SourceFile::new("a.rs", src);
        assert!(f.inline_allowed("L1", 1));
        assert!(f.inline_allowed("L1", 2), "marker excuses the next line");
        assert!(!f.inline_allowed("L1", 3));
        assert!(f.inline_allowed("L3", 5));
        assert!(!f.inline_allowed("L1", 5));
    }
}
