//! Item/brace-scope analysis over the token stream.
//!
//! One linear pass over the [`crate::lint::lex`] tokens recovers the
//! structure the rules need without a full parse:
//!
//! - **function items** — name, visibility, parameter-list span and body
//!   span (brace-matched, nesting included);
//! - **`#[cfg(test)]` / `#[test]` subtrees** — byte ranges covered by
//!   test-only items, so rules can skip them;
//! - **loop bodies** — brace spans opened by `for`/`while`/`loop`
//!   headers, with `impl Trait for Type` and `for<'a>` higher-ranked
//!   bounds recognised so their `for` never counts as a loop;
//! - **`unsafe` keyword sites** for the SAFETY-contract rule.
//!
//! Brace matching is exact over the token stream (string/char/comment
//! contents can no longer unbalance it, unlike the old line-stripping
//! heuristics), which is what makes loop-accurate rules like L6/L12
//! feasible outside carefully curated directories.

use super::lex::{Kind, Token};

/// One `fn` item (free function, inherent/trait method, nested fn).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub fn_kw: usize,
    /// Whether the item is written plain `pub` (not `pub(crate)`/
    /// `pub(super)`, which are not public API).
    pub is_pub: bool,
    /// Byte span of the parameter list, *excluding* the parentheses.
    pub params: (usize, usize),
    /// Byte span of the body including braces; `None` for bodyless
    /// declarations (trait methods, extern blocks).
    pub body: Option<(usize, usize)>,
}

/// The scope facts for one file.
#[derive(Debug, Default)]
pub struct Scopes {
    /// Every `fn` item in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Byte ranges (half-open) covered by `#[cfg(test)]`/`#[test]` items,
    /// from the attribute to the item's closing brace or semicolon.
    pub test_regions: Vec<(usize, usize)>,
    /// Brace spans (including braces) of `for`/`while`/`loop` bodies.
    pub loop_bodies: Vec<(usize, usize)>,
    /// Byte offsets of `unsafe` keyword tokens.
    pub unsafe_sites: Vec<usize>,
}

impl Scopes {
    /// Whether `offset` falls inside a test-only item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= offset && offset < b)
    }

    /// Whether `offset` falls inside a loop body.
    pub fn in_loop(&self, offset: usize) -> bool {
        self.loop_bodies
            .iter()
            .any(|&(a, b)| a <= offset && offset < b)
    }

    /// The innermost function whose body contains `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| a <= offset && offset < b))
            .min_by_key(|f| f.body.map(|(a, b)| b - a).unwrap_or(usize::MAX))
    }
}

/// What a `{` belonged to when it was opened.
#[derive(Debug, Clone, Copy)]
enum BraceKind {
    Plain,
    /// Loop body; payload is the loop keyword's byte offset.
    Loop(usize),
    /// Body of the fn at this index in `Scopes::fns`.
    FnBody(usize),
    /// Body of a `#[cfg(test)]`/`#[test]` item; payload is the region
    /// start (the attribute's `#`).
    Test(usize),
}

/// Runs the scope analysis. `tokens` must be the lex of `src`.
pub fn analyze(src: &str, tokens: &[Token]) -> Scopes {
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let mut scopes = Scopes::default();
    let mut braces: Vec<BraceKind> = Vec::new();
    // Pending classification for the next `{` at paren/bracket depth 0.
    let mut pending_loop: Option<usize> = None;
    // A test attribute waiting for its item to end; (attr start, brace
    // depth at the attribute).
    let mut pending_test: Option<(usize, usize)> = None;
    // A parsed fn signature waiting for `{` or `;`.
    let mut pending_fn: Option<usize> = None; // index into scopes.fns
                                              // Inside an `impl`/`trait` header (until its `{`): `for` is not a loop.
    let mut in_impl_header = false;
    let mut paren_depth = 0usize; // ( ) and [ ] combined

    let mut i = 0;
    while i < sig.len() {
        let tok = sig[i];
        let text = tok.text(src);
        match tok.kind {
            Kind::Ident => match text {
                "unsafe" => scopes.unsafe_sites.push(tok.start),
                "impl" | "trait" => in_impl_header = true,
                "for" | "while" | "loop" if paren_depth == 0 => {
                    // `impl Trait for Type` and `for<'a>` are not loops.
                    let hrtb = sig.get(i + 1).is_some_and(|t| t.text(src) == "<");
                    if !in_impl_header && !hrtb {
                        pending_loop = Some(tok.start);
                    }
                }
                "fn" => {
                    if let Some((item, next)) = parse_fn_sig(src, &sig, i) {
                        scopes.fns.push(item);
                        pending_fn = Some(scopes.fns.len() - 1);
                        // Continue from the token after the param list's
                        // `)` so idents inside params don't re-trigger.
                        i = next;
                        continue;
                    }
                }
                _ => {}
            },
            Kind::Punct => match text.as_bytes().first().copied() {
                Some(b'#') => {
                    // Attribute: `#[…]` (skip inner `#![…]`).
                    let mut j = i + 1;
                    let inner = sig.get(j).is_some_and(|t| t.text(src) == "!");
                    if inner {
                        j += 1;
                    }
                    if sig.get(j).is_some_and(|t| t.text(src) == "[") {
                        let close = match_bracket(src, &sig, j);
                        if !inner && pending_test.is_none() {
                            let attr_text: String = sig[j..(close + 1).min(sig.len())]
                                .iter()
                                .map(|t| t.text(src))
                                .collect();
                            if is_test_attr(&attr_text) {
                                pending_test = Some((tok.start, braces.len()));
                            }
                        }
                        i = close + 1;
                        continue;
                    }
                }
                Some(b'(' | b'[') => paren_depth += 1,
                Some(b')' | b']') => paren_depth = paren_depth.saturating_sub(1),
                Some(b'{') => {
                    let kind = if paren_depth > 0 {
                        BraceKind::Plain
                    } else if let Some(off) = pending_loop.take() {
                        BraceKind::Loop(off)
                    } else if let Some((start, depth)) = pending_test {
                        if braces.len() == depth {
                            pending_test = None;
                            pending_fn = None;
                            BraceKind::Test(start)
                        } else {
                            BraceKind::Plain
                        }
                    } else if let Some(fi) = pending_fn.take() {
                        in_impl_header = false;
                        BraceKind::FnBody(fi)
                    } else {
                        in_impl_header = false;
                        BraceKind::Plain
                    };
                    braces.push(kind);
                }
                Some(b'}') => {
                    if let Some(kind) = braces.pop() {
                        let end = tok.end;
                        match kind {
                            BraceKind::Loop(off) => {
                                // Span from the keyword so allocs in the
                                // header count too; includes the braces.
                                scopes.loop_bodies.push((off, end));
                            }
                            BraceKind::FnBody(fi) => {
                                if let Some(f) = scopes.fns.get_mut(fi) {
                                    let open = f.params.1;
                                    f.body = Some((open, end));
                                    // Refine: body starts at its `{`.
                                    if let Some(b) = body_open(src, open, end) {
                                        f.body = Some((b, end));
                                    }
                                }
                            }
                            BraceKind::Test(start) => {
                                scopes.test_regions.push((start, end));
                            }
                            BraceKind::Plain => {}
                        }
                    }
                }
                Some(b';') => {
                    // A bodyless item ends: cancel a same-depth pending
                    // test attribute (e.g. `#[cfg(test)] use …;`) and any
                    // pending fn (trait method declaration).
                    if let Some((_, depth)) = pending_test {
                        if braces.len() == depth {
                            pending_test = None;
                        }
                    }
                    pending_fn = None;
                    pending_loop = None;
                    if paren_depth == 0 {
                        in_impl_header = false;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    scopes
}

/// Finds the byte offset of the first `{` in `src[from..to]`.
fn body_open(src: &str, from: usize, to: usize) -> Option<usize> {
    src[from..to].find('{').map(|p| from + p)
}

/// Parses the signature of the `fn` at significant-token index `at`.
/// Returns the item (body filled in later) and the index of the token
/// after the parameter list's closing paren.
fn parse_fn_sig(src: &str, sig: &[&Token], at: usize) -> Option<(FnItem, usize)> {
    let fn_kw = sig[at].start;
    let mut j = at + 1;
    let name_tok = sig.get(j)?;
    if name_tok.kind != Kind::Ident {
        return None; // `fn` in a type position (`fn()` pointers)
    }
    let name = name_tok.text(src).to_owned();
    j += 1;
    // Skip generics `<…>` (angle brackets only nest with themselves in a
    // signature's generic list).
    if sig.get(j).is_some_and(|t| t.text(src) == "<") {
        let mut depth = 0isize;
        while j < sig.len() {
            match sig[j].text(src) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "(" | ")" | "{" | "}" | ";" => return None, // malformed
                _ => {}
            }
            j += 1;
        }
    }
    if sig.get(j).is_none_or(|t| t.text(src) != "(") {
        return None;
    }
    let open = sig[j].start;
    let close_idx = match_paren(src, sig, j);
    let close = sig.get(close_idx).map_or(src.len(), |t| t.start);
    let is_pub = leading_pub(src, sig, at);
    Some((
        FnItem {
            name,
            fn_kw,
            is_pub,
            params: (open + 1, close),
            body: None,
        },
        close_idx + 1,
    ))
}

/// Whether the tokens before the `fn` at index `at` spell a plain `pub`
/// (qualifiers `const`/`unsafe`/`async`/`extern "…"` skipped;
/// `pub(crate)`-style restricted visibility does not count).
fn leading_pub(src: &str, sig: &[&Token], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        match (sig[j].kind, sig[j].text(src)) {
            (Kind::Ident, "const" | "unsafe" | "async" | "extern") => continue,
            (Kind::Str, _) => continue, // the ABI string of `extern "C"`
            (Kind::Ident, "pub") => return true,
            _ => return false,
        }
    }
    false
}

/// Index of the token matching the `(` or `[` at `open_idx`.
fn match_paren(src: &str, sig: &[&Token], open_idx: usize) -> usize {
    let mut depth = 0isize;
    let mut j = open_idx;
    while j < sig.len() {
        match sig[j].text(src) {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    sig.len()
}

/// Index of the token matching the `[` at `open_idx` (brackets only —
/// attribute contents may hold parens and braces freely).
fn match_bracket(src: &str, sig: &[&Token], open_idx: usize) -> usize {
    let mut depth = 0isize;
    let mut j = open_idx;
    while j < sig.len() {
        match sig[j].text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    sig.len()
}

/// Whether a whitespace-free attribute text marks a test-only item.
fn is_test_attr(compact: &str) -> bool {
    compact.starts_with("[cfg(test)")
        || compact.starts_with("[test]")
        || compact.starts_with("[cfg(all(test")
        || compact.starts_with("[cfg(any(test")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lex::lex;

    fn scopes(src: &str) -> Scopes {
        analyze(src, &lex(src))
    }

    #[test]
    fn finds_fn_items_with_visibility() {
        let src =
            "pub fn a(x: u8) {}\nfn b() {}\npub(crate) fn c() {}\npub const unsafe fn d() {}\n";
        let s = scopes(src);
        let names: Vec<(&str, bool)> = s.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            vec![("a", true), ("b", false), ("c", false), ("d", true)]
        );
        assert!(s.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn param_spans_cover_the_list() {
        let src = "pub fn f(x: &Tensor, n: usize) -> f32 { 0.0 }";
        let s = scopes(src);
        let (a, b) = s.fns[0].params;
        assert_eq!(&src[a..b], "x: &Tensor, n: usize");
    }

    #[test]
    fn generic_fns_and_trait_decls() {
        let src = "pub fn g<T: Into<Vec<u8>>>(t: T) {}\ntrait X { fn decl(&self); fn with_body(&self) {} }";
        let s = scopes(src);
        assert_eq!(s.fns.len(), 3);
        assert_eq!(&src[s.fns[0].params.0..s.fns[0].params.1], "t: T");
        assert_eq!(s.fns[1].name, "decl");
        assert!(s.fns[1].body.is_none(), "trait decl has no body");
        assert!(s.fns[2].body.is_some());
    }

    #[test]
    fn cfg_test_subtree_boundaries() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scopes(src);
        let unwrap_at = src.find("unwrap").expect("fixture");
        assert!(s.in_test(unwrap_at));
        assert!(!s.in_test(src.find("fn lib()").expect("fixture")));
        assert!(!s.in_test(src.find("fn lib2").expect("fixture")));
        // The whole mod — including the nested #[test] fn — is one region
        // starting at the mod's attribute.
        let attr_at = src.find("#[cfg(test)]").expect("fixture");
        assert!(s.test_regions.iter().any(|&(a, _)| a == attr_at));
    }

    #[test]
    fn cfg_test_attr_with_strings_and_nested_brackets() {
        // Bracket contents (strings, nested brackets) must not confuse
        // the attribute scanner.
        let src = "#[cfg_attr(test, doc = \"a ] tricky ] string\")]\nfn f() {}\n#[cfg(test)]\nfn g() { h(); }\n";
        let s = scopes(src);
        assert!(!s.in_test(src.find("fn f").expect("fixture")));
        assert!(s.in_test(src.find("h()").expect("fixture")));
    }

    #[test]
    fn cfg_test_on_bodyless_item_is_cancelled_by_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn f() { g(); }\n";
        let s = scopes(src);
        assert!(!s.in_test(src.find("g()").expect("fixture")));
    }

    #[test]
    fn loop_bodies_exclude_impl_for_and_hrtb() {
        let src = "impl Iterator for It {\n    fn next(&mut self) -> Option<u8> { None }\n}\nfn f<F: for<'a> Fn(&'a u8)>(g: F) {\n    for i in 0..3 { body(i); }\n    while cond() { w(); }\n    loop { l(); break; }\n}\n";
        let s = scopes(src);
        assert_eq!(s.loop_bodies.len(), 3, "{:?}", s.loop_bodies);
        assert!(s.in_loop(src.find("body").expect("fixture")));
        assert!(s.in_loop(src.find("w()").expect("fixture")));
        assert!(s.in_loop(src.find("l()").expect("fixture")));
        assert!(!s.in_loop(src.find("None").expect("fixture")));
    }

    #[test]
    fn closure_braces_in_loop_headers() {
        // The `{` inside the header's closure is at paren depth 1 and
        // must not become the loop body.
        let src = "fn f() {\n    for x in ys.iter().map(|y| { y * 2 }) {\n        inner(x);\n    }\n    after();\n}\n";
        let s = scopes(src);
        assert!(s.in_loop(src.find("inner").expect("fixture")));
        assert!(!s.in_loop(src.find("after").expect("fixture")));
    }

    #[test]
    fn labelled_loops_and_nested_loops() {
        let src = "fn f() {\n    'outer: for i in 0..3 {\n        loop {\n            if i > 1 { break 'outer; }\n        }\n    }\n}\n";
        let s = scopes(src);
        assert_eq!(s.loop_bodies.len(), 2);
        assert!(s.in_loop(src.find("break").expect("fixture")));
    }

    #[test]
    fn unsafe_sites_are_recorded() {
        let src =
            "fn f() { let x = unsafe { core::mem::transmute(1u32) }; }\npub unsafe fn g() {}\n";
        let s = scopes(src);
        assert_eq!(s.unsafe_sites.len(), 2);
        assert_eq!(s.unsafe_sites[0], src.find("unsafe").expect("fixture"));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    other();\n}\n";
        let s = scopes(src);
        let leaf = src.find("leaf").expect("fixture");
        assert_eq!(s.enclosing_fn(leaf).map(|f| f.name.as_str()), Some("inner"));
        let other = src.find("other").expect("fixture");
        assert_eq!(
            s.enclosing_fn(other).map(|f| f.name.as_str()),
            Some("outer")
        );
    }

    #[test]
    fn string_and_comment_braces_cannot_unbalance_scopes() {
        let src = "fn f() {\n    let s = \"}}}{{{\"; // }} stray {{\n    /* { */ g();\n}\nfn h() { i(); }\n";
        let s = scopes(src);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(
            s.enclosing_fn(src.find("i()").expect("fixture"))
                .map(|f| f.name.as_str()),
            Some("h")
        );
    }
}
