//! The `cargo xtask lint` driver.
//!
//! Walks `crates/*/src/**/*.rs` under the workspace root, runs rules
//! L1–L13 over each file (token engine: [`lex`], [`scope`],
//! [`source`]), filters violations through the allowlist file and
//! inline `// lint:allow(<rule>)` markers, and renders a report as
//! text, `rhsd-lint-report/1` JSON or GitHub workflow annotations.
//! Allowlist entries and inline markers that no longer suppress
//! anything are reported as *stale* for the `--check-allow` gate.

mod lex;
mod rules;
mod scope;
mod source;

use std::fmt;
use std::path::{Path, PathBuf};

use rhsd_obs::json;
use source::SourceFile;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`L1`..`L13`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Half-open byte span of the offending token(s) in the file.
    pub span: (usize, usize),
    /// Human-readable description.
    pub message: String,
}

/// The outcome of a lint run.
pub struct Report {
    violations: Vec<Violation>,
    files_scanned: usize,
    allowlisted: usize,
    /// Allowlist entries / inline markers that suppressed nothing.
    stale_allow: Vec<String>,
}

impl Report {
    /// True when no un-allowlisted violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Stale allowlist entries and inline markers (empty when the
    /// allowlist is tight).
    pub fn stale_allow(&self) -> &[String] {
        &self.stale_allow
    }

    /// Serializes the report in the stable `rhsd-lint-report/1` schema:
    ///
    /// ```json
    /// {
    ///   "schema": "rhsd-lint-report/1",
    ///   "files_scanned": 42,
    ///   "allowlisted": 1,
    ///   "stale_allow": ["…"],
    ///   "violations": [
    ///     {"rule": "L1", "path": "crates/a/src/x.rs", "line": 10,
    ///      "span": [120, 126], "message": "…"}
    ///   ]
    /// }
    /// ```
    ///
    /// Fields are never removed or renamed within schema version 1;
    /// consumers must ignore unknown fields.
    pub fn to_json(&self) -> String {
        fn jstr(s: &str) -> String {
            format!("\"{}\"", json::escape(s))
        }
        let mut s = String::from("{\"schema\":\"rhsd-lint-report/1\"");
        s.push_str(&format!(",\"files_scanned\":{}", self.files_scanned));
        s.push_str(&format!(",\"allowlisted\":{}", self.allowlisted));
        s.push_str(",\"stale_allow\":[");
        for (i, e) in self.stale_allow.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&jstr(e));
        }
        s.push_str("],\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"span\":[{},{}],\"message\":{}}}",
                jstr(v.rule),
                jstr(&v.path),
                v.line,
                v.span.0,
                v.span.1,
                jstr(&v.message),
            ));
        }
        s.push_str("]}\n");
        s
    }

    /// Renders GitHub workflow commands: one `::error` per violation
    /// (surfaced as a PR annotation on the offending line) and one
    /// `::warning` per stale allowlist entry, plus a trailing summary.
    pub fn to_github(&self) -> String {
        fn esc_msg(s: &str) -> String {
            s.replace('%', "%25")
                .replace('\r', "%0D")
                .replace('\n', "%0A")
        }
        fn esc_prop(s: &str) -> String {
            esc_msg(s).replace(':', "%3A").replace(',', "%2C")
        }
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "::error file={},line={},title=lint {}::{}\n",
                esc_prop(&v.path),
                v.line,
                esc_prop(v.rule),
                esc_msg(&v.message),
            ));
        }
        for e in &self.stale_allow {
            out.push_str(&format!(
                "::warning title=stale lint allow::{}\n",
                esc_msg(e)
            ));
        }
        out.push_str(&format!(
            "lint: {} violation(s), {} stale allow(s) in {} files scanned ({} allowlisted)\n",
            self.violations.len(),
            self.stale_allow.len(),
            self.files_scanned,
            self.allowlisted
        ));
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "{}: {}:{}: {}", v.rule, v.path, v.line, v.message)?;
        }
        for e in &self.stale_allow {
            writeln!(f, "stale-allow: {e}")?;
        }
        if self.violations.is_empty() {
            writeln!(
                f,
                "lint: {} files clean ({} allowlisted findings)",
                self.files_scanned, self.allowlisted
            )
        } else {
            writeln!(
                f,
                "lint: {} violation(s) in {} files scanned ({} allowlisted)",
                self.violations.len(),
                self.files_scanned,
                self.allowlisted
            )
        }
    }
}

/// An entry in the allowlist file: `<rule> <path>[:<line>]`.
#[derive(Debug, PartialEq, Eq)]
struct AllowEntry {
    rule: String,
    path: String,
    line: Option<usize>,
}

impl AllowEntry {
    fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule && self.path == v.path && self.line.is_none_or(|l| l == v.line)
    }

    fn render(&self) -> String {
        match self.line {
            Some(l) => format!("{} {}:{}", self.rule, self.path, l),
            None => format!("{} {}", self.rule, self.path),
        }
    }
}

/// Parses the allowlist format: one `<rule> <path>[:<line>]` per line,
/// `#` comments and blank lines ignored.
fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(target), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "allowlist line {}: expected `<rule> <path>[:<line>]`, got `{raw}`",
                idx + 1
            ));
        };
        let (path, line_no) = match target.rsplit_once(':') {
            Some((p, n)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                let parsed = n
                    .parse::<usize>()
                    .map_err(|e| format!("allowlist line {}: bad line number: {e}", idx + 1))?;
                (p.to_string(), Some(parsed))
            }
            _ => (target.to_string(), None),
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path,
            line: line_no,
        });
    }
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full lint pass.
pub fn run(root: &Path, allowlist_path: &Path) -> Result<Report, String> {
    let allow_text = match std::fs::read_to_string(allowlist_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("read {}: {e}", allowlist_path.display())),
    };
    let allowlist = parse_allowlist(&allow_text)?;
    let mut entry_used = vec![false; allowlist.len()];

    let crates_dir = root.join("crates");
    let rd = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for c in &crate_dirs {
        collect_rs_files(&c.join("src"), &mut files)?;
    }

    let mut violations = Vec::new();
    let mut allowlisted = 0usize;
    let files_scanned = files.len();
    // Every inline marker seen, and the ones that suppressed something.
    let mut markers: Vec<(String, usize, String)> = Vec::new(); // (path, line, rule)
    let mut marker_used: Vec<bool> = Vec::new();
    for path in &files {
        let raw =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = SourceFile::new(rel.clone(), raw);
        let marker_base = markers.len();
        for (rule, line) in file.inline_allow_markers() {
            markers.push((rel.clone(), line, rule));
            marker_used.push(false);
        }
        for v in rules::check_file(&file) {
            if file.inline_allowed(v.rule, v.line) {
                allowlisted += 1;
                // Credit the marker on the violation line, else the one
                // on the line above.
                for (mi, (_, mline, mrule)) in markers.iter().enumerate().skip(marker_base) {
                    if *mrule == v.rule && (*mline == v.line || *mline + 1 == v.line) {
                        marker_used[mi] = true;
                    }
                }
            } else if let Some(ei) = allowlist.iter().position(|a| a.matches(&v)) {
                allowlisted += 1;
                entry_used[ei] = true;
            } else {
                violations.push(v);
            }
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let mut stale_allow = Vec::new();
    for (ei, entry) in allowlist.iter().enumerate() {
        if !entry_used[ei] {
            stale_allow.push(format!(
                "allowlist entry `{}` no longer matches any finding",
                entry.render()
            ));
        }
    }
    for (mi, (path, line, rule)) in markers.iter().enumerate() {
        if !marker_used[mi] {
            stale_allow.push(format!(
                "inline `lint:allow({rule})` at {path}:{line} no longer matches any finding"
            ));
        }
    }

    Ok(Report {
        violations,
        files_scanned,
        allowlisted,
        stale_allow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: usize) -> Violation {
        Violation {
            rule,
            path: path.into(),
            line,
            span: (0, 0),
            message: "msg".into(),
        }
    }

    #[test]
    fn allowlist_parses_entries_and_comments() {
        let text = "# comment\n\nL1 crates/a/src/x.rs:10\nL4 crates/nn/src/y.rs # trailing\n";
        let entries = parse_allowlist(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "L1");
        assert_eq!(entries[0].line, Some(10));
        assert_eq!(entries[1].path, "crates/nn/src/y.rs");
        assert_eq!(entries[1].line, None);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(parse_allowlist("L1\n").is_err());
        assert!(parse_allowlist("L1 a b c\n").is_err());
    }

    #[test]
    fn allow_entry_matching() {
        let viol = v("L1", "crates/a/src/x.rs", 10);
        let exact = AllowEntry {
            rule: "L1".into(),
            path: "crates/a/src/x.rs".into(),
            line: Some(10),
        };
        let file_wide = AllowEntry {
            rule: "L1".into(),
            path: "crates/a/src/x.rs".into(),
            line: None,
        };
        let other = AllowEntry {
            rule: "L2".into(),
            path: "crates/a/src/x.rs".into(),
            line: None,
        };
        assert!(exact.matches(&viol));
        assert!(file_wide.matches(&viol));
        assert!(!other.matches(&viol));
    }

    #[test]
    fn report_renders_violations_and_summary() {
        let r = Report {
            violations: vec![v("L2", "crates/a/src/x.rs", 3)],
            files_scanned: 5,
            allowlisted: 1,
            stale_allow: Vec::new(),
        };
        let s = r.to_string();
        assert!(s.contains("L2: crates/a/src/x.rs:3: msg"));
        assert!(s.contains("1 violation(s)"));
        assert!(!r.is_clean());
    }

    #[test]
    fn json_report_matches_the_documented_schema() {
        let r = Report {
            violations: vec![Violation {
                rule: "L8",
                path: "crates/a/src/x.rs".into(),
                line: 3,
                span: (41, 52),
                message: "a \"quoted\" msg\nwith newline".into(),
            }],
            files_scanned: 5,
            allowlisted: 1,
            stale_allow: vec!["allowlist entry `L7 a.rs` no longer matches any finding".into()],
        };
        let text = r.to_json();
        json::validate(&text).expect("report is well-formed JSON");
        let doc = json::parse(&text).expect("parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("rhsd-lint-report/1")
        );
        assert_eq!(doc.get("files_scanned").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(doc.get("allowlisted").and_then(|v| v.as_u64()), Some(1));
        let stale = doc
            .get("stale_allow")
            .and_then(|v| v.as_arr())
            .expect("arr");
        assert_eq!(stale.len(), 1);
        let viols = doc.get("violations").and_then(|v| v.as_arr()).expect("arr");
        assert_eq!(viols.len(), 1);
        assert_eq!(viols[0].get("rule").and_then(|v| v.as_str()), Some("L8"));
        assert_eq!(viols[0].get("line").and_then(|v| v.as_u64()), Some(3));
        let span = viols[0].get("span").and_then(|v| v.as_arr()).expect("span");
        assert_eq!(span[0].as_u64(), Some(41));
        assert_eq!(span[1].as_u64(), Some(52));
        assert_eq!(
            viols[0].get("message").and_then(|v| v.as_str()),
            Some("a \"quoted\" msg\nwith newline")
        );
    }

    #[test]
    fn github_format_escapes_and_annotates() {
        let r = Report {
            violations: vec![Violation {
                rule: "L1",
                path: "crates/a/src/x.rs".into(),
                line: 7,
                span: (0, 6),
                message: "bad: 50% of cases\nsecond line".into(),
            }],
            files_scanned: 2,
            allowlisted: 0,
            stale_allow: vec!["stale entry".into()],
        };
        let s = r.to_github();
        assert!(
            s.contains("::error file=crates/a/src/x.rs,line=7,title=lint L1::"),
            "{s}"
        );
        assert!(s.contains("50%25 of cases%0Asecond line"), "{s}");
        assert!(
            s.contains("::warning title=stale lint allow::stale entry"),
            "{s}"
        );
        assert!(s.contains("1 violation(s), 1 stale allow(s)"));
    }

    #[test]
    fn end_to_end_over_a_temp_tree() {
        let dir = std::env::temp_dir().join("xtask-lint-e2e");
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).expect("mkdir");
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
             pub fn g(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(L1)\n",
        )
        .expect("write");
        let report = run(&dir, &dir.join("nonexistent.allow")).expect("runs");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "L1");
        assert_eq!(report.allowlisted, 1);
        assert!(report.stale_allow.is_empty(), "{:?}", report.stale_allow);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_allowlist_entries_and_markers_are_reported() {
        let dir = std::env::temp_dir().join("xtask-lint-stale");
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).expect("mkdir");
        // The marker no longer suppresses anything (no finding on its
        // lines), and the allowlist names a finding that doesn't exist.
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f() -> u8 { 1 } // lint:allow(L1)\n",
        )
        .expect("write");
        std::fs::write(dir.join("lint.allow"), "L7 crates/demo/src/lib.rs\n").expect("write");
        let report = run(&dir, &dir.join("lint.allow")).expect("runs");
        assert!(report.is_clean());
        assert_eq!(report.stale_allow.len(), 2, "{:?}", report.stale_allow);
        assert!(report.stale_allow[0].contains("L7 crates/demo/src/lib.rs"));
        assert!(report.stale_allow[1].contains("lint:allow(L1)"));
        assert!(report.stale_allow[1].contains("lib.rs:1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
