//! The `cargo xtask lint` driver.
//!
//! Walks `crates/*/src/**/*.rs` under the workspace root, runs rules
//! L1–L7 over each file, filters violations through the allowlist file
//! and inline `// lint:allow(<rule>)` markers, and renders a report.

mod rules;
mod source;

use std::fmt;
use std::path::{Path, PathBuf};

use source::SourceFile;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`L1`..`L7`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// The outcome of a lint run.
pub struct Report {
    violations: Vec<Violation>,
    files_scanned: usize,
    allowlisted: usize,
}

impl Report {
    /// True when no un-allowlisted violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "{}: {}:{}: {}", v.rule, v.path, v.line, v.message)?;
        }
        if self.violations.is_empty() {
            writeln!(
                f,
                "lint: {} files clean ({} allowlisted findings)",
                self.files_scanned, self.allowlisted
            )
        } else {
            writeln!(
                f,
                "lint: {} violation(s) in {} files scanned ({} allowlisted)",
                self.violations.len(),
                self.files_scanned,
                self.allowlisted
            )
        }
    }
}

/// An entry in the allowlist file: `<rule> <path>[:<line>]`.
#[derive(Debug, PartialEq, Eq)]
struct AllowEntry {
    rule: String,
    path: String,
    line: Option<usize>,
}

impl AllowEntry {
    fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule && self.path == v.path && self.line.is_none_or(|l| l == v.line)
    }
}

/// Parses the allowlist format: one `<rule> <path>[:<line>]` per line,
/// `#` comments and blank lines ignored.
fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(target), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "allowlist line {}: expected `<rule> <path>[:<line>]`, got `{raw}`",
                idx + 1
            ));
        };
        let (path, line_no) = match target.rsplit_once(':') {
            Some((p, n)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                let parsed = n
                    .parse::<usize>()
                    .map_err(|e| format!("allowlist line {}: bad line number: {e}", idx + 1))?;
                (p.to_string(), Some(parsed))
            }
            _ => (target.to_string(), None),
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path,
            line: line_no,
        });
    }
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full lint pass.
pub fn run(root: &Path, allowlist_path: &Path) -> Result<Report, String> {
    let allow_text = match std::fs::read_to_string(allowlist_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("read {}: {e}", allowlist_path.display())),
    };
    let allowlist = parse_allowlist(&allow_text)?;

    let crates_dir = root.join("crates");
    let rd = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for c in &crate_dirs {
        collect_rs_files(&c.join("src"), &mut files)?;
    }

    let mut violations = Vec::new();
    let mut allowlisted = 0usize;
    let files_scanned = files.len();
    for path in &files {
        let raw =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = SourceFile::new(rel, raw);
        for v in rules::check_file(&file) {
            if file.inline_allowed(v.rule, v.line) || allowlist.iter().any(|a| a.matches(&v)) {
                allowlisted += 1;
            } else {
                violations.push(v);
            }
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    Ok(Report {
        violations,
        files_scanned,
        allowlisted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_entries_and_comments() {
        let text = "# comment\n\nL1 crates/a/src/x.rs:10\nL4 crates/nn/src/y.rs # trailing\n";
        let entries = parse_allowlist(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "L1");
        assert_eq!(entries[0].line, Some(10));
        assert_eq!(entries[1].path, "crates/nn/src/y.rs");
        assert_eq!(entries[1].line, None);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(parse_allowlist("L1\n").is_err());
        assert!(parse_allowlist("L1 a b c\n").is_err());
    }

    #[test]
    fn allow_entry_matching() {
        let v = Violation {
            rule: "L1",
            path: "crates/a/src/x.rs".into(),
            line: 10,
            message: String::new(),
        };
        let exact = AllowEntry {
            rule: "L1".into(),
            path: "crates/a/src/x.rs".into(),
            line: Some(10),
        };
        let file_wide = AllowEntry {
            rule: "L1".into(),
            path: "crates/a/src/x.rs".into(),
            line: None,
        };
        let other = AllowEntry {
            rule: "L2".into(),
            path: "crates/a/src/x.rs".into(),
            line: None,
        };
        assert!(exact.matches(&v));
        assert!(file_wide.matches(&v));
        assert!(!other.matches(&v));
    }

    #[test]
    fn report_renders_violations_and_summary() {
        let r = Report {
            violations: vec![Violation {
                rule: "L2",
                path: "crates/a/src/x.rs".into(),
                line: 3,
                message: "msg".into(),
            }],
            files_scanned: 5,
            allowlisted: 1,
        };
        let s = r.to_string();
        assert!(s.contains("L2: crates/a/src/x.rs:3: msg"));
        assert!(s.contains("1 violation(s)"));
        assert!(!r.is_clean());
    }

    #[test]
    fn end_to_end_over_a_temp_tree() {
        let dir = std::env::temp_dir().join("xtask-lint-e2e");
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).expect("mkdir");
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
             pub fn g(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(L1)\n",
        )
        .expect("write");
        let report = run(&dir, &dir.join("nonexistent.allow")).expect("runs");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "L1");
        assert_eq!(report.allowlisted, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
