//! The workspace lint rules L1–L13.
//!
//! Each rule walks a [`SourceFile`]'s token stream and scope facts and
//! returns violations. Rationale and the escape hatch for every rule
//! live in DESIGN.md §Correctness tooling.

use super::lex::Kind;
use super::source::SourceFile;
use super::Violation;

/// Scope decisions derived from a file's workspace-relative path.
pub struct FileScope {
    /// Crate directory name under `crates/` (e.g. `tensor`).
    pub crate_name: String,
}

impl FileScope {
    /// Derives the scope from a `crates/<name>/src/...` relative path.
    pub fn of(rel_path: &str) -> FileScope {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        FileScope { crate_name }
    }
}

/// Runs every rule over one file.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let scope = FileScope::of(&file.rel_path);
    let sig = Sig::new(file);
    let mut v = Vec::new();
    v.extend(l1_no_panics(file, &sig));
    v.extend(l2_no_hash_collections(file, &sig));
    v.extend(l3_no_wall_clock(file, &sig, &scope));
    v.extend(l4_shapes_doc(file, &scope));
    v.extend(l5_no_raw_threads(file, &sig, &scope));
    v.extend(l6_l12_no_loop_allocs(file, &sig));
    v.extend(l7_no_stdio_prints(file, &sig, &scope));
    v.extend(l8_float_reductions(file, &sig));
    v.extend(l9_lock_discipline(file, &sig, &scope));
    v.extend(l10_safety_contracts(file));
    v.extend(l11_shape_cross_check(file, &scope));
    v.extend(l13_isa_containment(file, &sig));
    v
}

fn violation(
    file: &SourceFile,
    rule: &'static str,
    span: (usize, usize),
    msg: String,
) -> Violation {
    Violation {
        rule,
        path: file.rel_path.clone(),
        line: file.line_of(span.0),
        span,
        message: msg,
    }
}

/// The significant (non-trivia) tokens of a file, indexable for
/// sequence matching.
struct Sig<'a> {
    toks: Vec<&'a super::lex::Token>,
    src: &'a str,
}

impl<'a> Sig<'a> {
    fn new(file: &'a SourceFile) -> Sig<'a> {
        Sig {
            toks: file.significant().collect(),
            src: &file.raw,
        }
    }

    fn text(&self, i: usize) -> &'a str {
        self.toks.get(i).map(|t| t.text(self.src)).unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<Kind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn span(&self, i: usize) -> (usize, usize) {
        self.toks.get(i).map(|t| (t.start, t.end)).unwrap_or((0, 0))
    }

    /// Indices of Ident tokens with the given text.
    fn idents(&self, name: &str) -> Vec<usize> {
        self.toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == Kind::Ident && t.text(self.src) == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether the tokens at `i` spell `seg0 :: seg1 :: …`. Returns the
    /// index one past the match.
    fn match_path(&self, i: usize, segs: &[&str]) -> Option<usize> {
        let mut j = i;
        for (k, seg) in segs.iter().enumerate() {
            if k > 0 {
                if self.text(j) != ":" || self.text(j + 1) != ":" {
                    return None;
                }
                j += 2;
            }
            if self.kind(j) != Some(Kind::Ident) || self.text(j) != *seg {
                return None;
            }
            j += 1;
        }
        Some(j)
    }

    /// Whether the token at `i` is preceded by a `.` (method call /
    /// field access rather than a free or path call).
    fn preceded_by_dot(&self, i: usize) -> bool {
        i > 0 && self.text(i - 1) == "."
    }

    /// Whether the token at `i` is preceded by `fn` (a definition, not
    /// a call).
    fn preceded_by_fn(&self, i: usize) -> bool {
        i > 0 && self.text(i - 1) == "fn"
    }
}

/// L1: no `unwrap()` / `expect()` / `panic!` in library code outside tests.
///
/// `assert!`/`debug_assert!` are deliberately permitted: they state
/// invariants, not error handling. Recoverable failures must use the
/// crate's typed error enums.
fn l1_no_panics(file: &SourceFile, sig: &Sig) -> Vec<Violation> {
    let mut out = Vec::new();
    for (word, needs, label) in [
        ("unwrap", "(", "`.unwrap()` in non-test library code"),
        ("expect", "(", "`.expect()` in non-test library code"),
        ("panic", "!", "`panic!` in non-test library code"),
    ] {
        for i in sig.idents(word) {
            let (start, _) = sig.span(i);
            if file.in_test(start) || sig.text(i + 1) != needs {
                continue;
            }
            out.push(violation(
                file,
                "L1",
                sig.span(i),
                format!("{label}; use a typed error"),
            ));
        }
    }
    out
}

/// L2: no `HashMap`/`HashSet` in non-test library code.
///
/// Unordered iteration feeding serialization, metrics export or h-NMS
/// ordering silently breaks run-to-run determinism; the workspace
/// standard is `BTreeMap`/`BTreeSet` (deterministic iteration order).
fn l2_no_hash_collections(file: &SourceFile, sig: &Sig) -> Vec<Violation> {
    let mut out = Vec::new();
    for word in ["HashMap", "HashSet"] {
        for i in sig.idents(word) {
            let (start, _) = sig.span(i);
            if file.in_test(start) {
                continue;
            }
            out.push(violation(
                file,
                "L2",
                sig.span(i),
                format!("`{word}` has nondeterministic iteration order; use BTreeMap/BTreeSet"),
            ));
        }
    }
    out
}

/// L3: no wall-clock access outside `rhsd-obs` and `rhsd-bench`.
///
/// `Instant`-derived values leaking into library crates are a
/// nondeterminism source; all timing goes through `rhsd-obs` spans.
fn l3_no_wall_clock(file: &SourceFile, sig: &Sig, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name == "obs" || scope.crate_name == "bench" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in sig.idents("std") {
        if sig.match_path(i, &["std", "time"]).is_none() {
            continue;
        }
        let (start, _) = sig.span(i);
        if file.in_test(start) {
            continue;
        }
        out.push(violation(
            file,
            "L3",
            sig.span(i),
            "`std::time` outside rhsd-obs/rhsd-bench breaks determinism".to_string(),
        ));
    }
    for word in ["Instant", "SystemTime"] {
        for i in sig.idents(word) {
            let (start, _) = sig.span(i);
            if file.in_test(start) {
                continue;
            }
            out.push(violation(
                file,
                "L3",
                sig.span(i),
                format!("`{word}` outside rhsd-obs/rhsd-bench breaks determinism"),
            ));
        }
    }
    out.sort_by_key(|v| v.span.0);
    out
}

/// L4: public tensor-consuming functions in `rhsd-nn`/`rhsd-core` must
/// document their expected shapes in a `/// Shapes:` doc section.
fn l4_shapes_doc(file: &SourceFile, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name != "nn" && scope.crate_name != "core" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &file.scopes.fns {
        if !f.is_pub || file.in_test(f.fn_kw) {
            continue;
        }
        let params = &file.code[f.params.0..f.params.1];
        if word_offsets(params, "Tensor").next().is_none() {
            continue;
        }
        if !doc_block_mentions_shapes(file, f.fn_kw) {
            out.push(violation(
                file,
                "L4",
                (f.fn_kw, f.fn_kw + 2),
                format!(
                    "public tensor-consuming fn `{}` lacks a `/// Shapes:` doc section",
                    f.name
                ),
            ));
        }
    }
    out
}

/// L5: no raw thread creation (`thread::spawn` / `thread::Builder`)
/// outside `rhsd-par`, `rhsd-obs` and `rhsd-serve`.
///
/// All pipeline parallelism goes through the `rhsd-par` pool: its fixed
/// chunk schedule and in-order reduction are what keep results
/// bit-identical at any thread count, and its counters feed the
/// observability layer. Ad-hoc threads bypass both. (`rhsd-obs` owns one
/// audited background writer thread; `rhsd-serve` owns the acceptor,
/// per-connection and batcher threads — compute inside them still runs
/// on the rhsd-par pool.)
fn l5_no_raw_threads(file: &SourceFile, sig: &Sig, scope: &FileScope) -> Vec<Violation> {
    if matches!(scope.crate_name.as_str(), "par" | "obs" | "serve") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for tail in ["spawn", "Builder"] {
        for i in sig.idents("thread") {
            if sig.match_path(i, &["thread", tail]).is_none() {
                continue;
            }
            let (start, _) = sig.span(i);
            if file.in_test(start) {
                continue;
            }
            out.push(violation(
                file,
                "L5",
                sig.span(i),
                format!("`thread::{tail}` outside rhsd-par; use the rhsd_par pool (deterministic schedule + obs counters)"),
            ));
        }
    }
    out.sort_by_key(|v| v.span.0);
    out
}

/// Files subject to the L12 extension of the no-loop-alloc rule: the
/// litho aerial/window simulation and the rhsd-core region-scan path.
const L12_FILES: &[&str] = &[
    "crates/litho/src/aerial.rs",
    "crates/litho/src/window.rs",
    "crates/core/src/extractor.rs",
    "crates/core/src/detector.rs",
    "crates/core/src/feature_cache.rs",
];

/// L6 + L12: no buffer allocation (`vec![..]` / `Vec::with_capacity`)
/// inside loop bodies on hot paths.
///
/// The hot kernels draw scratch from `rhsd_tensor::workspace` so
/// steady-state inference performs zero heap allocations; a `vec!` inside
/// a `for`/`while`/`loop` body re-pays the allocator on every iteration.
/// One-time allocations before the loop (and the workspace pool itself,
/// which lives outside `ops/`) are fine. L6 covers the tensor op kernels
/// (`crates/tensor/src/ops/`); L12 extends the same check to the litho
/// aerial/window simulation and the core scan loops, now that loop
/// detection is token-accurate.
fn l6_l12_no_loop_allocs(file: &SourceFile, sig: &Sig) -> Vec<Violation> {
    let rule: &'static str = if file.rel_path.starts_with("crates/tensor/src/ops/") {
        "L6"
    } else if L12_FILES.contains(&file.rel_path.as_str()) {
        "L12"
    } else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut sites: Vec<(usize, &str)> = Vec::new();
    for i in sig.idents("vec") {
        if sig.text(i + 1) == "!" {
            sites.push((i, "`vec!`"));
        }
    }
    for i in sig.idents("Vec") {
        if sig.match_path(i, &["Vec", "with_capacity"]).is_some() {
            sites.push((i, "`Vec::with_capacity`"));
        }
    }
    for (i, label) in sites {
        let (start, _) = sig.span(i);
        if file.in_test(start) || !file.scopes.in_loop(start) {
            continue;
        }
        out.push(violation(
            file,
            rule,
            sig.span(i),
            format!("{label} inside a hot loop; hoist it or take scratch from the Workspace pool"),
        ));
    }
    out.sort_by_key(|v| v.span.0);
    out
}

/// L7: no `println!`/`eprintln!` (or `print!`/`eprint!`) in library
/// code.
///
/// Library crates report through `rhsd-obs` (counters, spans, the
/// ledger) so output stays machine-readable and quiet by default;
/// stray prints corrupt piped output (`--bench-out -` style usage) and
/// bypass the run ledger. Binaries (`src/bin/`), `rhsd-obs` itself and
/// the `xtask` tree (not scanned) own the terminal. The audited CLI
/// surface in `rhsd-bench` is allowlisted, not exempted: new prints
/// there still need a deliberate allowlist entry.
fn l7_no_stdio_prints(file: &SourceFile, sig: &Sig, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name == "obs" || file.rel_path.contains("/src/bin/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for word in ["println", "eprintln", "print", "eprint"] {
        for i in sig.idents(word) {
            let (start, _) = sig.span(i);
            if file.in_test(start) || sig.text(i + 1) != "!" {
                continue;
            }
            out.push(violation(
                file,
                "L7",
                sig.span(i),
                format!("`{word}!` in library code; report through rhsd-obs instead"),
            ));
        }
    }
    out.sort_by_key(|v| v.span.0);
    out
}

/// The module allowed to hold order-sensitive float reductions: it pins
/// the reduction order explicitly and everything else calls into it.
const L8_EXEMPT: &str = "crates/tensor/src/ops/reduce.rs";

/// L8: no order-sensitive float reductions outside the pinned `reduce`
/// helpers.
///
/// `.sum::<f32>()`, float-seeded `fold`s and `partial_cmp` comparators
/// all change results under re-ordering (or misorder NaN), which breaks
/// the bit-identical-at-any-thread-count invariant the determinism
/// tests pin. Sums/maxes go through `rhsd_tensor::ops::reduce`
/// (sequential, pinned order); float sorts use `total_cmp`.
fn l8_float_reductions(file: &SourceFile, sig: &Sig) -> Vec<Violation> {
    if file.rel_path == L8_EXEMPT {
        return Vec::new();
    }
    let mut out = Vec::new();
    // `.sum::<f32>()` / `.product::<f64>()` turbofish over floats.
    for word in ["sum", "product"] {
        for i in sig.idents(word) {
            let (start, _) = sig.span(i);
            if file.in_test(start) {
                continue;
            }
            // Pattern: sum :: < f32|f64
            if sig.text(i + 1) == ":"
                && sig.text(i + 2) == ":"
                && sig.text(i + 3) == "<"
                && matches!(sig.text(i + 4), "f32" | "f64")
            {
                out.push(violation(
                    file,
                    "L8",
                    sig.span(i),
                    format!(
                        "order-sensitive float `.{word}::<{}>()`; use rhsd_tensor::ops::reduce (pinned order)",
                        sig.text(i + 4)
                    ),
                ));
            }
        }
    }
    // `.fold(<float literal>, …)` — a float accumulator seeded inline.
    for i in sig.idents("fold") {
        let (start, _) = sig.span(i);
        if file.in_test(start) || sig.text(i + 1) != "(" {
            continue;
        }
        let mut j = i + 2;
        if sig.text(j) == "-" {
            j += 1;
        }
        let is_float_lit = sig.kind(j) == Some(Kind::Num) && {
            let t = sig.text(j);
            t.contains('.') || t.ends_with("f32") || t.ends_with("f64")
        };
        let is_float_const = matches!(sig.text(j), "f32" | "f64")
            && sig.text(j + 1) == ":"
            && sig.text(j + 2) == ":";
        if is_float_lit || is_float_const {
            out.push(violation(
                file,
                "L8",
                sig.span(i),
                "order-sensitive float `fold`; use rhsd_tensor::ops::reduce (pinned order)"
                    .to_string(),
            ));
        }
    }
    // `partial_cmp` comparators: not total over floats (NaN), and the
    // usual `unwrap_or(Equal)` fallback silently reorders.
    for i in sig.idents("partial_cmp") {
        let (start, _) = sig.span(i);
        if file.in_test(start) {
            continue;
        }
        out.push(violation(
            file,
            "L8",
            sig.span(i),
            "`partial_cmp` is not a total order over floats; use `total_cmp`".to_string(),
        ));
    }
    out.sort_by_key(|v| v.span.0);
    out
}

/// A global-lock class in the observability/parallelism layer.
///
/// `acquirers` are the functions that return the class's guard;
/// `entries` are functions whose call acquires the lock internally.
/// Entry names marked `true` are matched even as method calls
/// (`sw.stop_into(...)`); unmarked names only match free/path calls so
/// generic method names (`.record(…)`, `.close(…)`) don't false-fire.
/// `crates` limits where the class's names are meaningful — `global()`
/// is the ledger sink in rhsd-obs but the pool storage in rhsd-par.
struct LockClass {
    name: &'static str,
    crates: &'static [&'static str],
    acquirers: &'static [&'static str],
    entries: &'static [(&'static str, bool)],
}

const LOCK_CLASSES: &[LockClass] = &[
    LockClass {
        name: "registry",
        crates: &["obs", "par"],
        acquirers: &["registry"],
        entries: &[
            ("counter", false),
            ("record", false),
            ("record_secs", false),
            ("snapshot", false),
            ("span_events", false),
            ("chrome_trace_json", false),
            ("metrics_json", false),
            ("stop_into", true),
        ],
    },
    LockClass {
        name: "ledger",
        crates: &["obs"],
        acquirers: &["global"],
        entries: &[("emit", false), ("on_span_close", true), ("close", false)],
    },
    LockClass {
        name: "profiler",
        crates: &["obs"],
        acquirers: &["global_slot"],
        entries: &[("start_global", false), ("stop_global", false)],
    },
    LockClass {
        name: "stacks",
        crates: &["obs"],
        acquirers: &["stack_registry"],
        entries: &[("sample_stacks", false)],
    },
    LockClass {
        name: "pool",
        crates: &["par"],
        acquirers: &["lock"],
        entries: &[],
    },
];

/// L9: lock discipline across the global locks in `rhsd-obs`/`rhsd-par`.
///
/// The observability layer has five process-global locks (metrics
/// registry, ledger sink, profiler slot, span-stack registry, pool
/// queue). They are safe only because no function holds one while
/// taking another — PR 3 recorded that as a comment; this rule checks
/// it. Per function, a lexical call-edge approximation: after a call
/// that *acquires* class A's guard, any later call in the same body
/// that enters class B (B ≠ A) is flagged. Functions that do the
/// cross-class call *before* acquiring their own lock (the "never
/// nest" ordering) pass. The guard may in fact be dropped earlier than
/// the fn end — when that is provable, the site carries an inline
/// `// lint:allow(L9)` with the argument.
fn l9_lock_discipline(file: &SourceFile, sig: &Sig, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name != "obs" && scope.crate_name != "par" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &file.scopes.fns {
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        if file.in_test(f.fn_kw) {
            continue;
        }
        // (class index, token index) of acquisitions seen so far.
        let mut held: Vec<(usize, usize)> = Vec::new();
        for (i, t) in sig.toks.iter().enumerate() {
            if t.start < body_start || t.start >= body_end {
                continue;
            }
            if t.kind != Kind::Ident || sig.text(i + 1) != "(" {
                continue;
            }
            let name = t.text(sig.src);
            if sig.preceded_by_fn(i) {
                continue; // nested definition, not a call
            }
            let is_method = sig.preceded_by_dot(i);
            for (ci, class) in LOCK_CLASSES.iter().enumerate() {
                if !class.crates.iter().any(|c| *c == scope.crate_name) {
                    continue;
                }
                let acquires = !is_method && class.acquirers.contains(&name);
                let enters = acquires
                    || class
                        .entries
                        .iter()
                        .any(|&(e, as_method)| e == name && (as_method || !is_method));
                if !enters {
                    continue;
                }
                for &(held_ci, _) in &held {
                    if held_ci != ci {
                        out.push(violation(
                            file,
                            "L9",
                            (t.start, t.end),
                            format!(
                                "fn `{}` calls `{name}` (takes the {} lock) after acquiring the {} lock; never nest the global locks",
                                f.name,
                                class.name,
                                LOCK_CLASSES[held_ci].name,
                            ),
                        ));
                    }
                }
                if acquires {
                    held.push((ci, i));
                }
            }
        }
    }
    out.sort_by_key(|v| v.span.0);
    out
}

/// L10: every `unsafe` must carry an adjacent `// SAFETY:` comment.
///
/// The argument for why the invariants hold belongs next to the code
/// that relies on them; "adjacent" means on the same line or in the
/// contiguous comment/attribute block immediately above.
fn l10_safety_contracts(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for &off in &file.scopes.unsafe_sites {
        if file.in_test(off) {
            continue;
        }
        let line = file.line_of(off);
        if file.raw_line(line).contains("SAFETY:") {
            continue;
        }
        let mut l = line;
        let mut found = false;
        while l > 1 {
            l -= 1;
            let t = file.raw_line(l).trim();
            if t.starts_with("//") || t.starts_with("/*") || t.starts_with('*') {
                if t.contains("SAFETY:") {
                    found = true;
                    break;
                }
            } else if t.starts_with("#[") || t.ends_with(']') {
                continue; // attributes between the comment and the item
            } else {
                break;
            }
        }
        if !found {
            let context = file
                .scopes
                .enclosing_fn(off)
                .map(|f| format!(" in fn `{}`", f.name))
                .unwrap_or_default();
            out.push(violation(
                file,
                "L10",
                (off, off + "unsafe".len()),
                format!(
                    "`unsafe`{context} without an adjacent `// SAFETY:` comment arguing the invariants"
                ),
            ));
        }
    }
    out
}

/// L11: `Shapes:` docs must agree with the fn signature.
///
/// L4 makes public tensor-consuming fns *have* a Shapes section; L11
/// keeps it honest: every `` `name` is `…` `` expression in the doc must
/// name a real parameter, and every Tensor-typed parameter must appear
/// in the doc, so renames and added arguments can't silently strand the
/// contract.
fn l11_shape_cross_check(file: &SourceFile, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name != "nn" && scope.crate_name != "core" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &file.scopes.fns {
        if !f.is_pub || file.in_test(f.fn_kw) {
            continue;
        }
        let doc = doc_block(file, f.fn_kw);
        if !doc.iter().any(|l| l.contains("Shapes:")) {
            continue; // L4's department
        }
        let params = param_names_and_types(&file.code[f.params.0..f.params.1]);
        let names: Vec<&str> = params.iter().map(|(n, _)| n.as_str()).collect();
        // Direction 1: documented names must exist in the signature.
        for l in &doc {
            for name in documented_names(l) {
                if name != "returns" && name != "result" && name != "self" && !names.contains(&name)
                {
                    out.push(violation(
                        file,
                        "L11",
                        (f.fn_kw, f.fn_kw + 2),
                        format!(
                            "Shapes doc of `{}` describes `{name}`, which is not a parameter (doc drifted from signature?)",
                            f.name
                        ),
                    ));
                }
            }
        }
        // Direction 2: every Tensor parameter must be described.
        for (name, ty) in &params {
            if word_offsets(ty, "Tensor").next().is_none() {
                continue;
            }
            let tick = format!("`{name}`");
            if !doc.iter().any(|l| l.contains(&tick)) {
                out.push(violation(
                    file,
                    "L11",
                    (f.fn_kw, f.fn_kw + 2),
                    format!(
                        "Shapes doc of `{}` does not describe tensor parameter `{name}`",
                        f.name
                    ),
                ));
            }
        }
    }
    out
}

/// Paths allowed to contain ISA-specific code: the runtime-dispatched
/// SIMD micro-kernels and the litho aerial kernel file (whitelisted for
/// a future fused taps path).
const L13_ISA_PREFIX: &str = "crates/tensor/src/ops/kernels/";
const L13_ISA_FILES: &[&str] = &["crates/litho/src/kernel.rs"];

/// The one file allowed to probe CPU features: the `Isa` selector.
const L13_DETECT_FILE: &str = "crates/tensor/src/ops/kernels/mod.rs";

/// L13: ISA-specific code is contained in the kernels module.
///
/// `core::arch`/`std::arch` paths, `_mm*` intrinsics and
/// `#[target_feature]` may appear only under
/// `crates/tensor/src/ops/kernels/` (plus the whitelisted litho kernel
/// file), and `is_x86_feature_detected!` only in the selector
/// (`kernels/mod.rs`): every other dispatch site must go through the
/// single `rhsd_tensor::ops::kernels::Isa` selector so forced-scalar
/// mode (`RHSD_FORCE_SCALAR=1`) and the bitwise scalar/SIMD equivalence
/// tests cover *all* vector code. `unsafe` inside the kernels still
/// needs its `// SAFETY:` comment — that is L10's department.
fn l13_isa_containment(file: &SourceFile, sig: &Sig) -> Vec<Violation> {
    let allowed = file.rel_path.starts_with(L13_ISA_PREFIX)
        || L13_ISA_FILES.contains(&file.rel_path.as_str());
    let may_detect = file.rel_path == L13_DETECT_FILE;
    if allowed && may_detect {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in sig.toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let name = t.text(sig.src);
        if !may_detect && name == "is_x86_feature_detected" {
            out.push(violation(
                file,
                "L13",
                sig.span(i),
                "CPU feature probing outside the Isa selector; dispatch through \
                 `rhsd_tensor::ops::kernels::isa()` so forced-scalar mode stays authoritative"
                    .to_owned(),
            ));
            continue;
        }
        if allowed {
            continue;
        }
        if (name == "core" || name == "std") && sig.match_path(i, &[name, "arch"]).is_some() {
            out.push(violation(
                file,
                "L13",
                sig.span(i),
                format!(
                    "`{name}::arch` outside `{L13_ISA_PREFIX}`; ISA-specific code lives in the \
                     kernels module behind the Isa selector"
                ),
            ));
        } else if name.starts_with("_mm") {
            out.push(violation(
                file,
                "L13",
                sig.span(i),
                format!(
                    "intrinsic `{name}` outside `{L13_ISA_PREFIX}`; call the dispatched \
                     kernels (`gemm_micro`, `copy_f32`, `conv_taps`, …) instead"
                ),
            ));
        } else if name == "target_feature" {
            out.push(violation(
                file,
                "L13",
                sig.span(i),
                format!(
                    "`#[target_feature]` outside `{L13_ISA_PREFIX}`; feature-gated fns belong \
                     next to the kernels so the scalar reference stays side by side"
                ),
            ));
        }
    }
    out.sort_by_key(|v| v.span.0);
    out
}

/// Byte offsets of word-boundary occurrences of `word` in `code`.
fn word_offsets<'a>(code: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = code.as_bytes();
    code.match_indices(word).filter_map(move |(i, _)| {
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let after = i + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        (before_ok && after_ok).then_some(i)
    })
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The doc-comment block attached to the item whose first keyword sits
/// at byte `item_off` — walks the token stream backward over
/// whitespace, visibility/qualifier keywords, attributes (bracket-
/// matched, so multi-line `#[cfg_attr(…)]` is fine) and plain comments,
/// collecting doc-comment text in source order.
fn doc_block(file: &SourceFile, item_off: usize) -> Vec<String> {
    let Ok(idx) = file.tokens.binary_search_by(|t| t.start.cmp(&item_off)) else {
        return Vec::new();
    };
    let mut lines: Vec<String> = Vec::new();
    let mut bracket_depth = 0usize;
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = &file.tokens[j];
        let text = t.text(&file.raw);
        if bracket_depth > 0 {
            // Inside an attribute, consumed right-to-left.
            match text {
                "]" => bracket_depth += 1,
                "[" => bracket_depth -= 1,
                _ => {}
            }
            continue;
        }
        match t.kind {
            Kind::Ws => {}
            Kind::LineComment | Kind::BlockComment => {
                if t.is_doc(&file.raw) {
                    lines.push(
                        text.trim_start_matches('/')
                            .trim_start_matches('*')
                            .trim_start_matches('!')
                            .trim_end_matches('/')
                            .trim_end_matches('*')
                            .to_string(),
                    );
                }
                // plain comments between doc and item are skipped
            }
            Kind::Ident if matches!(text, "pub" | "const" | "unsafe" | "async" | "extern") => {}
            Kind::Str => {} // the ABI string of `extern "C"`
            Kind::Punct if text == "]" => bracket_depth += 1,
            Kind::Punct if text == "#" => {} // the `#` of a consumed attribute
            _ => break,
        }
    }
    lines.reverse();
    lines
}

/// Whether the doc block above the item at `item_off` has a `Shapes:`
/// section.
fn doc_block_mentions_shapes(file: &SourceFile, item_off: usize) -> bool {
    doc_block(file, item_off)
        .iter()
        .any(|l| l.contains("Shapes:"))
}

/// Backticked names that a doc line *describes*: `` `x` is `…` `` or
/// `` `x` and `y` are `…` ``.
fn documented_names(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('`') else { break };
        let name = &tail[..close];
        let after = tail[close + 1..].trim_start();
        if !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && (after.starts_with("is ")
                || after.starts_with("are ")
                || after.starts_with("and ")
                || after.starts_with(", "))
        {
            out.push(name);
        }
        rest = &tail[close + 1..];
    }
    out
}

/// Splits a parameter list into `(name, type)` pairs. Top-level commas
/// only; `self` receivers are reported as `("self", "")`.
fn param_names_and_types(params: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let bytes = params.as_bytes();
    let mut parts = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b',' if depth <= 0 => {
                parts.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&params[start..]);
    for p in parts {
        let p = p.trim();
        if p.is_empty() {
            continue;
        }
        if p.ends_with("self") {
            out.push(("self".to_string(), String::new()));
            continue;
        }
        let Some((name, ty)) = p.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_start_matches("mut ").trim().to_string();
        out.push((name, ty.trim().to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        check_file(&SourceFile::new(path, src))
    }

    fn rules(v: &[Violation]) -> Vec<&str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn l1_flags_unwrap_expect_panic() {
        let v = lint(
            "crates/data/src/a.rs",
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }",
        );
        assert_eq!(rules(&v), vec!["L1", "L1", "L1"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn l1_ignores_unwrap_or_and_tests_and_comments() {
        let v = lint(
            "crates/data/src/a.rs",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }\n\
             // a comment saying unwrap()\n\
             #[cfg(test)]\nmod tests { fn g() { x.unwrap(); panic!(); } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l1_ignores_should_panic_attr_and_asserts() {
        let v = lint(
            "crates/data/src/a.rs",
            "#[should_panic(expected = \"boom\")]\nfn f() { assert!(x > 0); debug_assert_eq!(a, b); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l1_inline_allow_is_reported_by_driver_not_rule() {
        // The rule still fires; filtering happens in the driver.
        let v = lint(
            "crates/data/src/a.rs",
            "fn f() { panic!(\"contract\"); } // lint:allow(L1)",
        );
        assert_eq!(rules(&v), vec!["L1"]);
    }

    #[test]
    fn l2_flags_hash_collections_outside_tests() {
        let v = lint(
            "crates/data/src/a.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n\
             #[cfg(test)]\nmod tests { use std::collections::HashSet; }\n",
        );
        assert_eq!(rules(&v), vec!["L2", "L2", "L2"]);
        assert!(v[0].message.contains("BTreeMap"));
    }

    #[test]
    fn l3_flags_wall_clock_outside_obs_and_bench() {
        let bad = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let v = lint("crates/core/src/a.rs", bad);
        assert!(rules(&v).iter().all(|r| *r == "L3"));
        assert!(!v.is_empty());
        assert!(lint("crates/obs/src/a.rs", bad).is_empty());
        assert!(lint("crates/bench/src/a.rs", bad).is_empty());
    }

    #[test]
    fn l5_flags_raw_threads_outside_par_and_obs() {
        let bad = "fn f() { std::thread::spawn(|| {}); }\n\
                   fn g() { let b = std::thread::Builder::new(); }";
        let v = lint("crates/core/src/a.rs", bad);
        assert_eq!(rules(&v), vec!["L5", "L5"]);
        assert!(v[0].message.contains("rhsd_par"));
        // the pool crate, the obs writer thread and the serve crate's
        // acceptor/connection/batcher threads are exempt
        assert!(lint("crates/par/src/lib.rs", bad).is_empty());
        assert!(lint("crates/obs/src/span.rs", bad).is_empty());
        assert!(lint("crates/serve/src/server.rs", bad).is_empty());
    }

    #[test]
    fn l5_ignores_tests_and_comments() {
        let v = lint(
            "crates/core/src/a.rs",
            "// a note about thread::spawn\n\
             #[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l4_requires_shapes_doc_on_public_tensor_fns() {
        let bad = "/// Does things.\npub fn f(x: &Tensor) -> f32 { 0.0 }\n";
        let good = "/// Does things.\n///\n/// Shapes: `x` is `[n, 4]`.\npub fn f(x: &Tensor) -> f32 { 0.0 }\n";
        assert_eq!(rules(&lint("crates/nn/src/a.rs", bad)), vec!["L4"]);
        assert!(lint("crates/nn/src/a.rs", good).is_empty());
        // Other crates are out of scope.
        assert!(lint("crates/layout/src/a.rs", bad).is_empty());
    }

    #[test]
    fn l4_skips_private_and_pub_crate_and_tensorless_fns() {
        let src = "fn f(x: &Tensor) {}\npub(crate) fn g(x: &Tensor) {}\npub fn h(n: usize) {}\n";
        assert!(lint("crates/nn/src/a.rs", src).is_empty());
    }

    #[test]
    fn l6_flags_loop_allocs_only_under_tensor_ops() {
        let bad = "fn f(n: usize) {\n    for _i in 0..n {\n        let v = vec![0.0f32; n];\n        let mut w: Vec<f32> = Vec::with_capacity(n);\n        w.push(v[0]);\n    }\n}\n";
        let v = lint("crates/tensor/src/ops/a.rs", bad);
        assert_eq!(rules(&v), vec!["L6", "L6"]);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("Workspace"));
        // the workspace pool itself and other crates are out of scope
        assert!(lint("crates/tensor/src/workspace.rs", bad).is_empty());
        assert!(lint("crates/nn/src/layers/a.rs", bad).is_empty());
    }

    #[test]
    fn l6_ignores_allocs_outside_loops_and_in_tests() {
        let src = "fn f(n: usize) -> Vec<f32> {\n    let v = vec![0.0f32; n];\n    let _w: Vec<f32> = Vec::with_capacity(n);\n    v\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { for _ in 0..3 { let _v = vec![1]; } }\n}\n";
        assert!(lint("crates/tensor/src/ops/a.rs", src).is_empty());
    }

    #[test]
    fn l6_impl_for_is_not_a_loop() {
        let src = "impl Kernel for Packed {\n    fn f(&self, n: usize) -> Vec<f32> {\n        vec![0.0f32; n]\n    }\n}\n";
        assert!(lint("crates/tensor/src/ops/a.rs", src).is_empty());
        let nested = "impl Kernel for Packed {\n    fn f(&self, n: usize) {\n        while n > 0 {\n            let _v = vec![0.0f32; n];\n        }\n    }\n}\n";
        assert_eq!(
            rules(&lint("crates/tensor/src/ops/a.rs", nested)),
            vec!["L6"]
        );
    }

    #[test]
    fn l7_flags_prints_in_library_code() {
        let bad = "fn f() { println!(\"x\"); eprintln!(\"y\"); print!(\"z\"); eprint!(\"w\"); }";
        let v = lint("crates/data/src/a.rs", bad);
        assert_eq!(rules(&v), vec!["L7", "L7", "L7", "L7"]);
        assert!(v[0].message.contains("rhsd-obs"));
    }

    #[test]
    fn l7_exempts_bins_obs_and_tests() {
        let bad = "fn f() { println!(\"x\"); }";
        assert!(lint("crates/bench/src/bin/repro_table1.rs", bad).is_empty());
        assert!(lint("crates/obs/src/ledger.rs", bad).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { println!(\"x\"); } }";
        assert!(lint("crates/data/src/a.rs", in_test).is_empty());
        // comments and non-macro identifiers don't fire
        let benign = "// println! is banned here\nfn print_table() {}\n";
        assert!(lint("crates/data/src/a.rs", benign).is_empty());
    }

    #[test]
    fn l4_handles_multiline_signatures_and_attrs() {
        let bad =
            "/// Doc.\n#[inline]\npub fn f(\n    x: &Tensor,\n    n: usize,\n) -> f32 { 0.0 }\n";
        let good =
            "/// Shapes: `x` is `[n]`.\n#[inline]\npub fn f(\n    x: &Tensor,\n) -> f32 { 0.0 }\n";
        assert_eq!(rules(&lint("crates/core/src/a.rs", bad)), vec!["L4"]);
        assert!(lint("crates/core/src/a.rs", good).is_empty());
    }

    // ---- new-rule tests (L8–L12) ----

    #[test]
    fn l8_flags_float_turbofish_sums() {
        let v = lint(
            "crates/data/src/a.rs",
            "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\nfn g(xs: &[f64]) -> f64 { xs.iter().product::<f64>() }\n",
        );
        assert_eq!(rules(&v), vec!["L8", "L8"]);
        assert!(v[0].message.contains("reduce"));
        // Integer reductions are order-insensitive and fine.
        let ok = "fn f(xs: &[u32]) -> u32 { xs.iter().sum::<u32>() }";
        assert!(lint("crates/data/src/a.rs", ok).is_empty());
    }

    #[test]
    fn l8_flags_float_seeded_folds_and_partial_cmp() {
        let v = lint(
            "crates/data/src/a.rs",
            "fn f(xs: &[f32]) -> f32 { xs.iter().fold(0.0f32, |a, &b| a.max(b)) }\n\
             fn g(xs: &[f64]) -> f64 { xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)) }\n\
             fn h(xs: &mut [f32]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }\n",
        );
        assert_eq!(rules(&v), vec!["L8", "L8", "L8"]);
        assert!(v[2].message.contains("total_cmp"));
        // Integer folds and non-float seeds don't fire.
        let ok = "fn f(xs: &[u32]) -> u32 { xs.iter().fold(0, |a, &b| a + b) }";
        assert!(lint("crates/data/src/a.rs", ok).is_empty());
    }

    #[test]
    fn l8_exempts_reduce_module_and_tests() {
        let sums = "pub fn s(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }";
        assert!(lint("crates/tensor/src/ops/reduce.rs", sums).is_empty());
        let in_test =
            "#[cfg(test)]\nmod tests { fn t(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() } }";
        assert!(lint("crates/data/src/a.rs", in_test).is_empty());
    }

    #[test]
    fn l9_flags_entry_after_acquire_of_other_class() {
        let src = "fn f() {\n    let mut reg = registry();\n    reg.push(1);\n    emit(&e);\n}\n";
        let v = lint("crates/obs/src/a.rs", src);
        assert_eq!(rules(&v), vec!["L9"]);
        assert!(v[0].message.contains("ledger"));
        assert!(v[0].message.contains("registry"));
    }

    #[test]
    fn l9_accepts_never_nest_ordering() {
        // Cross-class call *before* taking our own lock: the correct
        // pattern (ledger::close, SpanGuard::drop) must pass.
        let src = "fn close() {\n    let snap = snapshot();\n    let mut g = global();\n    g.write(&snap);\n}\n";
        assert!(lint("crates/obs/src/ledger.rs", src).is_empty());
    }

    #[test]
    fn l9_same_class_reentry_not_flagged_and_methods_ignored() {
        // Two acquisitions of the same class are the reentrancy bug
        // Mutex already catches at runtime; L9 only covers cross-class
        // nesting. Method calls with entry-like names don't fire.
        let src = "fn f() {\n    let a = registry();\n    let b = snapshot();\n    tx.close();\n    file.record(1);\n}\n";
        assert!(lint("crates/obs/src/a.rs", src).is_empty());
    }

    #[test]
    fn l9_pool_lock_vs_obs_counters() {
        let src =
            "fn worker() {\n    let mut q = lock(&self.queue);\n    counter(\"parks\", 1);\n}\n";
        let v = lint("crates/par/src/a.rs", src);
        assert_eq!(rules(&v), vec!["L9"]);
        // Outside obs/par the rule is off entirely.
        assert!(lint("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn l10_requires_safety_comment_on_unsafe() {
        let bad = "fn f() { let x = unsafe { std::mem::transmute::<u32, i32>(1) }; }";
        let v = lint("crates/par/src/a.rs", bad);
        assert_eq!(rules(&v), vec!["L10"]);
        let good = "fn f() {\n    // SAFETY: u32 and i32 have identical layout.\n    let x = unsafe { std::mem::transmute::<u32, i32>(1) };\n}";
        assert!(lint("crates/par/src/a.rs", good).is_empty());
        let same_line = "fn f() { let x = unsafe { g() }; // SAFETY: g has no preconditions\n}";
        assert!(lint("crates/par/src/a.rs", same_line).is_empty());
    }

    #[test]
    fn l10_safety_comment_above_attrs_counts_and_tests_are_exempt() {
        let good = "// SAFETY: the pointer is valid for 'scope.\n#[inline]\nunsafe fn g(p: *const u8) {}\n";
        assert!(lint("crates/par/src/a.rs", good).is_empty());
        let in_test =
            "#[cfg(test)]\nmod tests { fn t() { let _ = unsafe { core::hint::unreachable_unchecked() }; } }";
        assert!(lint("crates/par/src/a.rs", in_test).is_empty());
    }

    #[test]
    fn l11_flags_doc_signature_drift() {
        // Doc names a parameter that no longer exists.
        let drifted = "/// Shapes: `old` is `[n, 4]`.\npub fn f(x: &Tensor) -> f32 { 0.0 }\n";
        let v = lint("crates/nn/src/a.rs", drifted);
        assert!(rules(&v).contains(&"L11"), "{v:?}");
        // Tensor parameter missing from the doc.
        let missing =
            "/// Shapes: `x` is `[n, 4]`.\npub fn f(x: &Tensor, y: &Tensor) -> f32 { 0.0 }\n";
        let v = lint("crates/nn/src/a.rs", missing);
        assert!(rules(&v).contains(&"L11"), "{v:?}");
        // Consistent doc passes.
        let good = "/// Shapes: `x` is `[n, 4]`, `y` is `[n]`.\npub fn f(x: &Tensor, y: &Tensor) -> f32 { 0.0 }\n";
        assert!(lint("crates/nn/src/a.rs", good).is_empty());
    }

    #[test]
    fn l11_only_applies_where_l4_does() {
        let drifted = "/// Shapes: `old` is `[n]`.\npub fn f(x: &Tensor) {}\n";
        assert!(lint("crates/litho/src/a.rs", drifted).is_empty());
        let private = "/// Shapes: `old` is `[n]`.\nfn f(x: &Tensor) {}\n";
        assert!(lint("crates/nn/src/a.rs", private).is_empty());
    }

    #[test]
    fn l12_extends_loop_alloc_rule_to_scan_paths() {
        let bad =
            "fn f(n: usize) {\n    for _ in 0..n {\n        let _v = vec![0.0f32; n];\n    }\n}\n";
        let v = lint("crates/litho/src/aerial.rs", bad);
        assert_eq!(rules(&v), vec!["L12"]);
        let v = lint("crates/core/src/extractor.rs", bad);
        assert_eq!(rules(&v), vec!["L12"]);
        // Not on the curated hot-path list → no rule.
        assert!(lint("crates/core/src/train.rs", bad).is_empty());
    }

    #[test]
    fn l13_flags_isa_code_outside_kernels() {
        let bad = "// SAFETY: test fixture.\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn f(a: &[f32]) { use core::arch::x86_64::*; let _ = _mm256_setzero_ps(); }\n\
             fn g() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n";
        let v = lint("crates/nn/src/layers/conv2d.rs", bad);
        // target_feature, core::arch, _mm256…, std::arch, the probe macro.
        assert_eq!(rules(&v), vec!["L13"; 5], "{v:?}");
        assert!(v[0].message.contains("target_feature"), "{v:?}");
        assert!(
            v.iter().any(|x| x.message.contains("Isa selector")),
            "{v:?}"
        );
    }

    #[test]
    fn l13_allows_the_kernels_module_and_litho_kernel() {
        let simd = "// SAFETY: test fixture.\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn f() { use core::arch::x86_64::*; let _ = _mm256_setzero_ps(); }\n";
        assert!(lint("crates/tensor/src/ops/kernels/x86.rs", simd).is_empty());
        assert!(lint("crates/litho/src/kernel.rs", simd).is_empty());
        // Feature probing is narrower still: selector file only.
        let probe = "fn s() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n";
        assert!(lint("crates/tensor/src/ops/kernels/mod.rs", probe).is_empty());
        let v = lint("crates/tensor/src/ops/kernels/x86.rs", probe);
        assert_eq!(rules(&v), vec!["L13"]);
        // Outside the kernels tree both the `std::arch` path and the
        // probe itself fire.
        assert_eq!(
            rules(&lint("crates/litho/src/aerial.rs", probe)),
            vec!["L13"; 2]
        );
    }

    #[test]
    fn param_parsing_handles_nesting_and_self() {
        let ps = param_names_and_types("&self, x: &Tensor, f: impl Fn(u8, u8) -> u8, n: usize");
        let names: Vec<&str> = ps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["self", "x", "f", "n"]);
        assert_eq!(ps[1].1, "&Tensor");
    }

    #[test]
    fn documented_names_parses_shape_expressions() {
        assert_eq!(
            documented_names("Shapes: `x` is `[n, 4]`, `y` is `[n]`."),
            vec!["x", "y"]
        );
        assert_eq!(
            documented_names("Shapes: `a` and `b` are `[c, h, w]`."),
            vec!["a", "b"]
        );
        // Backticked type/expr mentions without "is/are" are not names.
        assert!(documented_names("returns `[n, 4]` boxes").is_empty());
    }
}
