//! The workspace lint rules L1–L7.
//!
//! Each rule scans a [`SourceFile`] code mask and returns violations.
//! Rationale and examples live in DESIGN.md §Correctness tooling.

use super::source::SourceFile;
use super::Violation;

/// Scope decisions derived from a file's workspace-relative path.
pub struct FileScope {
    /// Crate directory name under `crates/` (e.g. `tensor`).
    pub crate_name: String,
}

impl FileScope {
    /// Derives the scope from a `crates/<name>/src/...` relative path.
    pub fn of(rel_path: &str) -> FileScope {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        FileScope { crate_name }
    }
}

/// Runs every rule over one file.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let scope = FileScope::of(&file.rel_path);
    let mut v = Vec::new();
    v.extend(l1_no_panics(file));
    v.extend(l2_no_hash_collections(file));
    v.extend(l3_no_wall_clock(file, &scope));
    v.extend(l4_shapes_doc(file, &scope));
    v.extend(l5_no_raw_threads(file, &scope));
    v.extend(l6_no_loop_allocs(file));
    v.extend(l7_no_stdio_prints(file, &scope));
    v
}

fn violation(file: &SourceFile, rule: &'static str, offset: usize, msg: String) -> Violation {
    Violation {
        rule,
        path: file.rel_path.clone(),
        line: file.line_of(offset),
        message: msg,
    }
}

/// Byte offsets of word-boundary occurrences of `word` in `code`.
fn word_offsets<'a>(code: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = code.as_bytes();
    code.match_indices(word).filter_map(move |(i, _)| {
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let after = i + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        (before_ok && after_ok).then_some(i)
    })
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// First non-whitespace byte at or after `i`.
fn next_nonspace(code: &str, i: usize) -> Option<u8> {
    code.as_bytes()[i..]
        .iter()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

/// L1: no `unwrap()` / `expect()` / `panic!` in library code outside tests.
///
/// `assert!`/`debug_assert!` are deliberately permitted: they state
/// invariants, not error handling. Recoverable failures must use the
/// crate's typed error enums.
fn l1_no_panics(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (word, needs, label) in [
        ("unwrap", b'(', "`.unwrap()` in non-test library code"),
        ("expect", b'(', "`.expect()` in non-test library code"),
        ("panic", b'!', "`panic!` in non-test library code"),
    ] {
        for off in word_offsets(&file.code, word) {
            if file.in_test(off) {
                continue;
            }
            if next_nonspace(&file.code, off + word.len()) != Some(needs) {
                continue;
            }
            out.push(violation(
                file,
                "L1",
                off,
                format!("{label}; use a typed error"),
            ));
        }
    }
    out
}

/// L2: no `HashMap`/`HashSet` in non-test library code.
///
/// Unordered iteration feeding serialization, metrics export or h-NMS
/// ordering silently breaks run-to-run determinism; the workspace
/// standard is `BTreeMap`/`BTreeSet` (deterministic iteration order).
fn l2_no_hash_collections(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for word in ["HashMap", "HashSet"] {
        for off in word_offsets(&file.code, word) {
            if file.in_test(off) {
                continue;
            }
            out.push(violation(
                file,
                "L2",
                off,
                format!("`{word}` has nondeterministic iteration order; use BTreeMap/BTreeSet"),
            ));
        }
    }
    out
}

/// L3: no wall-clock access outside `rhsd-obs` and `rhsd-bench`.
///
/// `Instant`-derived values leaking into library crates are a
/// nondeterminism source; all timing goes through `rhsd-obs` spans.
fn l3_no_wall_clock(file: &SourceFile, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name == "obs" || scope.crate_name == "bench" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (pat, word_bounded) in [
        ("std::time", false),
        ("Instant", true),
        ("SystemTime", true),
    ] {
        let offsets: Vec<usize> = if word_bounded {
            word_offsets(&file.code, pat).collect()
        } else {
            file.code.match_indices(pat).map(|(i, _)| i).collect()
        };
        for off in offsets {
            if file.in_test(off) {
                continue;
            }
            out.push(violation(
                file,
                "L3",
                off,
                format!("`{pat}` outside rhsd-obs/rhsd-bench breaks determinism"),
            ));
        }
    }
    out
}

/// L4: public tensor-consuming functions in `rhsd-nn`/`rhsd-core` must
/// document their expected shapes in a `/// Shapes:` doc section.
fn l4_shapes_doc(file: &SourceFile, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name != "nn" && scope.crate_name != "core" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for off in word_offsets(&file.code, "fn") {
        if file.in_test(off) {
            continue;
        }
        let line = file.line_of(off);
        if !is_plain_pub_fn(file, line, off) {
            continue;
        }
        let Some(params) = param_list(&file.code, off) else {
            continue;
        };
        if word_offsets(&params, "Tensor").next().is_none() {
            continue;
        }
        if !doc_block_mentions_shapes(file, line) {
            let name = fn_name(&file.code, off);
            out.push(violation(
                file,
                "L4",
                off,
                format!("public tensor-consuming fn `{name}` lacks a `/// Shapes:` doc section"),
            ));
        }
    }
    out
}

/// L5: no raw thread creation (`thread::spawn` / `thread::Builder`)
/// outside `rhsd-par` and `rhsd-obs`.
///
/// All pipeline parallelism goes through the `rhsd-par` pool: its fixed
/// chunk schedule and in-order reduction are what keep results
/// bit-identical at any thread count, and its counters feed the
/// observability layer. Ad-hoc threads bypass both. (`rhsd-obs` owns one
/// audited background writer thread.)
fn l5_no_raw_threads(file: &SourceFile, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name == "par" || scope.crate_name == "obs" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pat in ["thread::spawn", "thread::Builder"] {
        for (off, _) in file.code.match_indices(pat) {
            if file.in_test(off) {
                continue;
            }
            out.push(violation(
                file,
                "L5",
                off,
                format!("`{pat}` outside rhsd-par; use the rhsd_par pool (deterministic schedule + obs counters)"),
            ));
        }
    }
    out
}

/// L6: no buffer allocation (`vec![..]` / `Vec::with_capacity`) inside
/// loop bodies in the `rhsd-tensor` op kernels (`crates/tensor/src/ops/`).
///
/// The hot kernels draw scratch from `rhsd_tensor::workspace` so
/// steady-state inference performs zero heap allocations; a `vec!` inside
/// a `for`/`while`/`loop` body re-pays the allocator on every iteration.
/// One-time allocations before the loop (and the workspace pool itself,
/// which lives outside `ops/`) are fine.
fn l6_no_loop_allocs(file: &SourceFile) -> Vec<Violation> {
    if !file.rel_path.starts_with("crates/tensor/src/ops/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let vec_bang: Vec<usize> = word_offsets(&file.code, "vec")
        .filter(|&off| next_nonspace(&file.code, off + 3) == Some(b'!'))
        .collect();
    let with_cap: Vec<usize> = file
        .code
        .match_indices("Vec::with_capacity")
        .map(|(i, _)| i)
        .collect();
    for (off, label) in vec_bang
        .into_iter()
        .map(|o| (o, "`vec!`"))
        .chain(with_cap.into_iter().map(|o| (o, "`Vec::with_capacity`")))
    {
        if file.in_test(off) || !inside_loop_body(&file.code, off) {
            continue;
        }
        out.push(violation(
            file,
            "L6",
            off,
            format!(
                "{label} inside a kernel loop; hoist it or take scratch from the Workspace pool"
            ),
        ));
    }
    out.sort_by_key(|v| v.line);
    out
}

/// L7: no `println!`/`eprintln!` (or `print!`/`eprint!`) in library
/// code.
///
/// Library crates report through `rhsd-obs` (counters, spans, the
/// ledger) so output stays machine-readable and quiet by default;
/// stray prints corrupt piped output (`--bench-out -` style usage) and
/// bypass the run ledger. Binaries (`src/bin/`), `rhsd-obs` itself and
/// the `xtask` tree (not scanned) own the terminal. The audited CLI
/// surface in `rhsd-bench` is allowlisted, not exempted: new prints
/// there still need a deliberate allowlist entry.
fn l7_no_stdio_prints(file: &SourceFile, scope: &FileScope) -> Vec<Violation> {
    if scope.crate_name == "obs" || file.rel_path.contains("/src/bin/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for word in ["println", "eprintln", "print", "eprint"] {
        for off in word_offsets(&file.code, word) {
            if file.in_test(off) {
                continue;
            }
            if next_nonspace(&file.code, off + word.len()) != Some(b'!') {
                continue;
            }
            out.push(violation(
                file,
                "L7",
                off,
                format!("`{word}!` in library code; report through rhsd-obs instead"),
            ));
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// True when `off` falls inside the brace-delimited body of a
/// `for`/`while`/`loop`. Scans the code mask tracking which open braces
/// belong to loop headers; `impl Trait for Type` is recognised so its
/// `for` does not count as a loop.
fn inside_loop_body(code: &str, off: usize) -> bool {
    let bytes = code.as_bytes();
    // true entries mark braces opened by a loop header
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    let mut pending_impl = false;
    let mut i = 0;
    while i < off {
        let b = bytes[i];
        if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            match &code[start..i] {
                "impl" => pending_impl = true,
                "for" if pending_impl => {}
                "for" | "while" | "loop" => pending_loop = true,
                _ => {}
            }
            continue;
        }
        match b {
            b'{' => {
                stack.push(pending_loop);
                pending_loop = false;
                pending_impl = false;
            }
            b'}' => {
                stack.pop();
            }
            b';' => {
                pending_loop = false;
                pending_impl = false;
            }
            _ => {}
        }
        i += 1;
    }
    stack.iter().any(|&is_loop| is_loop)
}

/// True if the `fn` at `off` is written `pub fn` (with optional
/// `const`/`unsafe`/`async` qualifiers). `pub(crate)`/`pub(super)` and
/// private fns are not public API; trait methods are never `pub`.
fn is_plain_pub_fn(file: &SourceFile, line: usize, off: usize) -> bool {
    let prefix = &file.code[line_byte_start(file, line)..off];
    let mut tokens: Vec<&str> = prefix.split_whitespace().collect();
    while matches!(tokens.last(), Some(&"const" | &"unsafe" | &"async")) {
        tokens.pop();
    }
    tokens.last() == Some(&"pub")
}

fn line_byte_start(file: &SourceFile, line: usize) -> usize {
    // Reconstruct from raw_line: find where this line begins.
    let mut start = 0;
    for _ in 1..line {
        start = file.raw[start..]
            .find('\n')
            .map(|p| start + p + 1)
            .unwrap_or(file.raw.len());
    }
    start
}

/// Extracts the parenthesised parameter list following `fn name`.
fn param_list(code: &str, fn_off: usize) -> Option<String> {
    let open = code[fn_off..].find('(')? + fn_off;
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(code[open + 1..k].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn fn_name(code: &str, fn_off: usize) -> String {
    code[fn_off + 2..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Walks upward from the line above `fn_line` over doc comments and
/// attributes, looking for `Shapes:`.
fn doc_block_mentions_shapes(file: &SourceFile, fn_line: usize) -> bool {
    let mut l = fn_line;
    while l > 1 {
        l -= 1;
        let raw = file.raw_line(l).trim();
        if raw.starts_with("///") || raw.starts_with("//!") {
            if raw.contains("Shapes:") {
                return true;
            }
        } else if raw.starts_with("#[") || raw.starts_with("//") || raw.ends_with("]") {
            continue; // attribute (possibly multi-line) or plain comment
        } else {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        check_file(&SourceFile::new(path, src))
    }

    fn rules(v: &[Violation]) -> Vec<&str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn l1_flags_unwrap_expect_panic() {
        let v = lint(
            "crates/data/src/a.rs",
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }",
        );
        assert_eq!(rules(&v), vec!["L1", "L1", "L1"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn l1_ignores_unwrap_or_and_tests_and_comments() {
        let v = lint(
            "crates/data/src/a.rs",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }\n\
             // a comment saying unwrap()\n\
             #[cfg(test)]\nmod tests { fn g() { x.unwrap(); panic!(); } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l1_ignores_should_panic_attr_and_asserts() {
        let v = lint(
            "crates/data/src/a.rs",
            "#[should_panic(expected = \"boom\")]\nfn f() { assert!(x > 0); debug_assert_eq!(a, b); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l1_inline_allow_is_reported_by_driver_not_rule() {
        // The rule still fires; filtering happens in the driver.
        let v = lint(
            "crates/data/src/a.rs",
            "fn f() { panic!(\"contract\"); } // lint:allow(L1)",
        );
        assert_eq!(rules(&v), vec!["L1"]);
    }

    #[test]
    fn l2_flags_hash_collections_outside_tests() {
        let v = lint(
            "crates/data/src/a.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n\
             #[cfg(test)]\nmod tests { use std::collections::HashSet; }\n",
        );
        assert_eq!(rules(&v), vec!["L2", "L2", "L2"]);
        assert!(v[0].message.contains("BTreeMap"));
    }

    #[test]
    fn l3_flags_wall_clock_outside_obs_and_bench() {
        let bad = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let v = lint("crates/core/src/a.rs", bad);
        assert!(rules(&v).iter().all(|r| *r == "L3"));
        assert!(!v.is_empty());
        assert!(lint("crates/obs/src/a.rs", bad).is_empty());
        assert!(lint("crates/bench/src/a.rs", bad).is_empty());
    }

    #[test]
    fn l5_flags_raw_threads_outside_par_and_obs() {
        let bad = "fn f() { std::thread::spawn(|| {}); }\n\
                   fn g() { let b = std::thread::Builder::new(); }";
        let v = lint("crates/core/src/a.rs", bad);
        assert_eq!(rules(&v), vec!["L5", "L5"]);
        assert!(v[0].message.contains("rhsd_par"));
        // the pool crate and the obs writer thread are exempt
        assert!(lint("crates/par/src/lib.rs", bad).is_empty());
        assert!(lint("crates/obs/src/span.rs", bad).is_empty());
    }

    #[test]
    fn l5_ignores_tests_and_comments() {
        let v = lint(
            "crates/core/src/a.rs",
            "// a note about thread::spawn\n\
             #[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l4_requires_shapes_doc_on_public_tensor_fns() {
        let bad = "/// Does things.\npub fn f(x: &Tensor) -> f32 { 0.0 }\n";
        let good = "/// Does things.\n///\n/// Shapes: `x` is `[n, 4]`.\npub fn f(x: &Tensor) -> f32 { 0.0 }\n";
        assert_eq!(rules(&lint("crates/nn/src/a.rs", bad)), vec!["L4"]);
        assert!(lint("crates/nn/src/a.rs", good).is_empty());
        // Other crates are out of scope.
        assert!(lint("crates/layout/src/a.rs", bad).is_empty());
    }

    #[test]
    fn l4_skips_private_and_pub_crate_and_tensorless_fns() {
        let src = "fn f(x: &Tensor) {}\npub(crate) fn g(x: &Tensor) {}\npub fn h(n: usize) {}\n";
        assert!(lint("crates/nn/src/a.rs", src).is_empty());
    }

    #[test]
    fn l6_flags_loop_allocs_only_under_tensor_ops() {
        let bad = "fn f(n: usize) {\n    for _i in 0..n {\n        let v = vec![0.0f32; n];\n        let mut w: Vec<f32> = Vec::with_capacity(n);\n        w.push(v[0]);\n    }\n}\n";
        let v = lint("crates/tensor/src/ops/a.rs", bad);
        assert_eq!(rules(&v), vec!["L6", "L6"]);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("Workspace"));
        // the workspace pool itself and other crates are out of scope
        assert!(lint("crates/tensor/src/workspace.rs", bad).is_empty());
        assert!(lint("crates/nn/src/layers/a.rs", bad).is_empty());
    }

    #[test]
    fn l6_ignores_allocs_outside_loops_and_in_tests() {
        let src = "fn f(n: usize) -> Vec<f32> {\n    let v = vec![0.0f32; n];\n    let _w: Vec<f32> = Vec::with_capacity(n);\n    v\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { for _ in 0..3 { let _v = vec![1]; } }\n}\n";
        assert!(lint("crates/tensor/src/ops/a.rs", src).is_empty());
    }

    #[test]
    fn l6_impl_for_is_not_a_loop() {
        let src = "impl Kernel for Packed {\n    fn f(&self, n: usize) -> Vec<f32> {\n        vec![0.0f32; n]\n    }\n}\n";
        assert!(lint("crates/tensor/src/ops/a.rs", src).is_empty());
        let nested = "impl Kernel for Packed {\n    fn f(&self, n: usize) {\n        while n > 0 {\n            let _v = vec![0.0f32; n];\n        }\n    }\n}\n";
        assert_eq!(
            rules(&lint("crates/tensor/src/ops/a.rs", nested)),
            vec!["L6"]
        );
    }

    #[test]
    fn l7_flags_prints_in_library_code() {
        let bad = "fn f() { println!(\"x\"); eprintln!(\"y\"); print!(\"z\"); eprint!(\"w\"); }";
        let v = lint("crates/data/src/a.rs", bad);
        assert_eq!(rules(&v), vec!["L7", "L7", "L7", "L7"]);
        assert!(v[0].message.contains("rhsd-obs"));
    }

    #[test]
    fn l7_exempts_bins_obs_and_tests() {
        let bad = "fn f() { println!(\"x\"); }";
        assert!(lint("crates/bench/src/bin/repro_table1.rs", bad).is_empty());
        assert!(lint("crates/obs/src/ledger.rs", bad).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { println!(\"x\"); } }";
        assert!(lint("crates/data/src/a.rs", in_test).is_empty());
        // comments and non-macro identifiers don't fire
        let benign = "// println! is banned here\nfn print_table() {}\n";
        assert!(lint("crates/data/src/a.rs", benign).is_empty());
    }

    #[test]
    fn l4_handles_multiline_signatures_and_attrs() {
        let bad =
            "/// Doc.\n#[inline]\npub fn f(\n    x: &Tensor,\n    n: usize,\n) -> f32 { 0.0 }\n";
        let good =
            "/// Shapes: `x` is `[n]`.\n#[inline]\npub fn f(\n    x: &Tensor,\n) -> f32 { 0.0 }\n";
        assert_eq!(rules(&lint("crates/core/src/a.rs", bad)), vec!["L4"]);
        assert!(lint("crates/core/src/a.rs", good).is_empty());
    }
}
