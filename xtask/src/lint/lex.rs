//! Zero-dependency Rust token lexer for the lint engine.
//!
//! Produces a flat token stream that **tiles the input**: every byte of
//! the source belongs to exactly one token, and concatenating the token
//! spans in order reproduces the file (pinned by the corpus test, which
//! lexes every `.rs` file in the workspace). Rules never regex raw text:
//! they walk tokens, so `"unwrap()"` in a string, `// panic!` in a
//! comment, `r#"…"#` raw strings and `&'a str` lifetimes are all
//! classified rather than guessed at.
//!
//! The lexer is deliberately smaller than rustc's: it does not validate
//! literals (an unterminated string lexes as a string running to EOF)
//! and it folds all operators into single-byte [`Kind::Punct`] tokens.
//! Both are fine for linting — the engine only needs to know *what kind
//! of text* each byte is.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Whitespace run.
    Ws,
    /// `// …` to end of line (doc comments included; see [`Token::is_doc`]).
    LineComment,
    /// `/* … */`, nested blocks handled; unterminated runs to EOF.
    BlockComment,
    /// `"…"` with escapes.
    Str,
    /// `r"…"` / `r#"…"#` with any number of hashes.
    RawStr,
    /// `b"…"` with escapes.
    ByteStr,
    /// `br"…"` / `br#"…"#`.
    RawByteStr,
    /// `'x'`, including escaped and multi-byte chars.
    Char,
    /// `b'x'`.
    Byte,
    /// `'a` / `'_` — a lifetime or loop label, *not* a char literal.
    Lifetime,
    /// Identifier or keyword (including raw identifiers `r#match`).
    Ident,
    /// Numeric literal (int or float, prefixes/suffixes included).
    Num,
    /// Any other single character (operators, brackets, `#`, …).
    Punct,
}

/// One token: a classification plus the half-open byte span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the bytes are.
    pub kind: Kind,
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether a comment token is a doc comment (`///`, `//!`, `/**`,
    /// `/*!`). `////…` and `/***…` are plain comments, as in rustc.
    pub fn is_doc(&self, src: &str) -> bool {
        let t = self.text(src);
        match self.kind {
            Kind::LineComment => {
                (t.starts_with("///") && !t.starts_with("////")) || t.starts_with("//!")
            }
            Kind::BlockComment => {
                (t.starts_with("/**") && !t.starts_with("/***") && t != "/**/")
                    || t.starts_with("/*!")
            }
            _ => false,
        }
    }

    /// Whether the token plays no role in program structure.
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, Kind::Ws | Kind::LineComment | Kind::BlockComment)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream that tiles `0..src.len()`.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(src.len() / 4 + 8);
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        let kind = if b.is_ascii_whitespace() {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            Kind::Ws
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            Kind::LineComment
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1usize;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Kind::BlockComment
        } else if b == b'"' {
            i = scan_string(bytes, i);
            Kind::Str
        } else if b == b'r' && raw_string_hashes(bytes, i + 1).is_some() {
            let hashes = raw_string_hashes(bytes, i + 1).unwrap_or(0);
            i = scan_raw_string(bytes, i + 1, hashes);
            Kind::RawStr
        } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
            i = scan_string(bytes, i + 1);
            Kind::ByteStr
        } else if b == b'b'
            && bytes.get(i + 1) == Some(&b'r')
            && raw_string_hashes(bytes, i + 2).is_some()
        {
            let hashes = raw_string_hashes(bytes, i + 2).unwrap_or(0);
            i = scan_raw_string(bytes, i + 2, hashes);
            Kind::RawByteStr
        } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
            i = scan_char(bytes, i + 1);
            Kind::Byte
        } else if b == b'\'' {
            match classify_quote(src, bytes, i) {
                QuoteKind::Char(end) => {
                    i = end;
                    Kind::Char
                }
                QuoteKind::Lifetime(end) => {
                    i = end;
                    Kind::Lifetime
                }
            }
        } else if b == b'r'
            && bytes.get(i + 1) == Some(&b'#')
            && bytes.get(i + 2).copied().is_some_and(is_ident_start)
        {
            // Raw identifier `r#match`.
            i += 2;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            Kind::Ident
        } else if is_ident_start(b) {
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            Kind::Ident
        } else if b.is_ascii_digit() {
            // After a single `.` this is a tuple-field index (`t.0.1`),
            // never a float; after `..` it's a range bound, where plain
            // number scanning is also correct.
            let field_dot =
                start > 0 && bytes[start - 1] == b'.' && !(start > 1 && bytes[start - 2] == b'.');
            if field_dot {
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            } else {
                i = scan_number(bytes, i);
            }
            Kind::Num
        } else {
            // One char (multi-byte UTF-8 included) of punctuation.
            i += src[i..].chars().next().map_or(1, char::len_utf8);
            Kind::Punct
        };
        out.push(Token {
            kind,
            start,
            end: i,
        });
    }
    out
}

/// Scans a `"…"` body starting at the opening quote; returns the offset
/// past the closing quote (or EOF when unterminated).
fn scan_string(bytes: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// If `bytes[at..]` looks like the `#…#"` opener of a raw string
/// (zero or more hashes then a quote), returns the hash count.
fn raw_string_hashes(bytes: &[u8], at: usize) -> Option<usize> {
    let mut j = at;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    (j < bytes.len() && bytes[j] == b'"').then_some(j - at)
}

/// Scans a raw string whose hashes start at `at`; returns the offset
/// past the closing `"##…`.
fn scan_raw_string(bytes: &[u8], at: usize, hashes: usize) -> usize {
    let mut i = at + hashes + 1; // past the opening quote
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    bytes.len()
}

/// Scans a char/byte literal body starting at the opening `'`; returns
/// the offset past the closing quote.
fn scan_char(bytes: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    if i < bytes.len() && bytes[i] == b'\\' {
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    (i + 1).min(bytes.len())
}

enum QuoteKind {
    Char(usize),
    Lifetime(usize),
}

/// Disambiguates `'a'` (char) from `'a` (lifetime/label) at a `'`.
fn classify_quote(src: &str, bytes: &[u8], i: usize) -> QuoteKind {
    // Escape → always a char literal.
    if bytes.get(i + 1) == Some(&b'\\') {
        return QuoteKind::Char(scan_char(bytes, i));
    }
    // `'x'` where x is one (possibly multi-byte) char → char literal.
    if let Some(c) = src[i + 1..].chars().next() {
        let close = i + 1 + c.len_utf8();
        if bytes.get(close) == Some(&b'\'') {
            return QuoteKind::Char(close + 1);
        }
    }
    // Otherwise a lifetime or loop label: `'` + ident chars.
    let mut j = i + 1;
    while j < bytes.len() && is_ident_continue(bytes[j]) {
        j += 1;
    }
    QuoteKind::Lifetime(j.max(i + 1))
}

/// Scans a numeric literal starting at a digit. Handles `0x/0o/0b`
/// prefixes, `_` separators, decimal points (`1.5` but not `1..2` or
/// `1.foo()`), exponents and type suffixes (`1f32`, `3usize`).
fn scan_number(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    let radix_prefix = bytes[i] == b'0'
        && matches!(
            bytes.get(i + 1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        );
    if radix_prefix {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // Fractional part: `.` followed by a digit, or a trailing `.` that is
    // neither a range (`..`) nor a method/field access (`.f`).
    if i < bytes.len() && bytes[i] == b'.' {
        match bytes.get(i + 1) {
            Some(d) if d.is_ascii_digit() => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
            Some(&b'.') => return i,
            Some(&b2) if is_ident_start(b2) => return i,
            _ => i += 1, // `1.` at end of expression
        }
    }
    // Exponent.
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`f32`, `u8`, `usize`, …) — any trailing ident chars.
    while i < bytes.len() && is_ident_continue(bytes[i]) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tokens must tile the input exactly.
    fn assert_round_trip(src: &str) {
        let toks = lex(src);
        let mut cursor = 0;
        for t in &toks {
            assert_eq!(t.start, cursor, "gap/overlap before {t:?} in {src:?}");
            assert!(t.end > t.start, "empty token {t:?} in {src:?}");
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            cursor = t.end;
        }
        assert_eq!(cursor, src.len(), "tokens must cover the whole input");
    }

    fn kinds(src: &str) -> Vec<(Kind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes() {
        for src in [
            r####"let s = r"plain";"####,
            r####"let s = r#"one "quote" deep"#;"####,
            r####"let s = r##"nested "# inside"##;"####,
        ] {
            assert_round_trip(src);
            let raw: Vec<_> = lex(src)
                .into_iter()
                .filter(|t| t.kind == Kind::RawStr)
                .collect();
            assert_eq!(raw.len(), 1, "{src}");
        }
        // Unterminated raw string runs to EOF without panicking.
        assert_round_trip(r####"let s = r#"never closed"####);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still outer */ b";
        assert_round_trip(src);
        let k = kinds(src);
        assert_eq!(k, vec![(Kind::Ident, "a"), (Kind::Ident, "b")]);
        let comment = lex(src)
            .into_iter()
            .find(|t| t.kind == Kind::BlockComment)
            .expect("has comment");
        assert_eq!(comment.text(src), "/* outer /* inner */ still outer */");
    }

    #[test]
    fn lifetimes_adjacent_to_char_literals() {
        let src = "fn f<'a>(s: &'a str) -> char { let c = 'a'; let u = '\\u{1F600}'; c }";
        assert_round_trip(src);
        let toks = lex(src);
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text(src), "'a'");
        assert_eq!(chars[1].text(src), "'\\u{1F600}'");
    }

    #[test]
    fn multibyte_char_literal_and_label() {
        let src = "let c = 'é'; 'outer: loop { break 'outer; }";
        assert_round_trip(src);
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == Kind::Char && t.text(src) == "'é'"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            2,
            "label at definition and at break"
        );
    }

    #[test]
    fn byte_strings_and_byte_literals() {
        let src = r##"let a = b"bytes"; let b = br#"raw "bytes""#; let c = b'\n'; let d = b'x';"##;
        assert_round_trip(src);
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::ByteStr).count(), 1);
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::RawByteStr).count(),
            1
        );
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Byte).count(), 2);
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        let src = "let r#match = 1; r#fn();";
        assert_round_trip(src);
        let k = kinds(src);
        assert!(k.contains(&(Kind::Ident, "r#match")));
        assert!(k.contains(&(Kind::Ident, "r#fn")));
    }

    #[test]
    fn numbers_floats_ranges_and_field_access() {
        for (src, num_texts) in [
            (
                "1.5e-3 + 0x_ff + 0b1010u8",
                vec!["1.5e-3", "0x_ff", "0b1010u8"],
            ),
            ("for i in 1..10 {}", vec!["1", "10"]),
            ("t.0.1", vec!["0", "1"]), // tuple field access, not a float
            ("let x = 1.;", vec!["1."]),
            ("2.0f64.sqrt()", vec!["2.0f64"]),
        ] {
            assert_round_trip(src);
            let nums: Vec<_> = lex(src)
                .into_iter()
                .filter(|t| t.kind == Kind::Num)
                .map(|t| t.text(src).to_owned())
                .collect();
            assert_eq!(nums, num_texts, "{src}");
        }
    }

    #[test]
    fn doc_comment_classification() {
        let src = "/// doc\n//! inner\n//// not doc\n// plain\n/** block doc */\n/*! inner block */\n/* plain */";
        assert_round_trip(src);
        let docs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.is_doc(src))
            .map(|t| t.text(src).to_owned())
            .collect();
        assert_eq!(
            docs,
            vec![
                "/// doc",
                "//! inner",
                "/** block doc */",
                "/*! inner block */"
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_unterminated_input() {
        assert_round_trip(r#"let s = "a\"b\\";"#);
        assert_round_trip("let s = \"never closed");
        assert_round_trip("let c = '");
        let toks = lex(r#"let s = "a\"b\\";"#);
        let s = toks.iter().find(|t| t.kind == Kind::Str).expect("string");
        assert_eq!(s.text(r#"let s = "a\"b\\";"#), r#""a\"b\\""#);
    }

    /// Lex every `.rs` file in the workspace and verify the tiling
    /// invariant holds on real code (the corpus test from the issue).
    #[test]
    fn corpus_round_trips_every_workspace_file() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("workspace root")
            .to_path_buf();
        let mut files = Vec::new();
        for dir in ["crates", "xtask/src", "src", "tests"] {
            let d = root.join(dir);
            if d.is_dir() {
                collect_rs(&d, &mut files);
            }
        }
        assert!(
            files.len() > 30,
            "corpus unexpectedly small: {} files",
            files.len()
        );
        for path in files {
            let src = std::fs::read_to_string(&path).expect("read corpus file");
            let toks = lex(&src);
            let mut cursor = 0;
            for t in &toks {
                assert_eq!(t.start, cursor, "{}: bad tiling at {t:?}", path.display());
                assert!(t.end > t.start, "{}: empty token", path.display());
                cursor = t.end;
            }
            assert_eq!(cursor, src.len(), "{}", path.display());
        }
    }

    #[cfg(test)]
    fn collect_rs(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        let Ok(rd) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in rd.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                collect_rs(&p, out);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
}
