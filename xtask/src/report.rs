//! `cargo xtask report`: renders a run ledger (and optionally a
//! sampling profile) as a human-readable run report.
//!
//! Reads the JSONL ledger a repro binary writes (`LEDGER_*.jsonl`),
//! reconstructs the run from its typed events, and prints:
//!
//! - the `run_start` manifest (binary, seed, effort, threads, host);
//! - the span tree aggregated from `span_close` lines — hierarchical
//!   inclusive/exclusive wall-clock attribution per stack path;
//! - the top exclusive-time span paths (where the run actually spent
//!   its time);
//! - cache-efficiency gauges from the `run_end` counters: hit/miss/
//!   eviction/byte totals and the hit rate per `cache.*` family;
//! - training dynamics from `epoch` events — the loss/lr/grad-norm/
//!   entropy trajectory, the per-layer dynamics table from the last
//!   sampled epoch, and any divergence-sentinel trips;
//! - the evaluation table (per detector and case);
//! - with `--profile <file>`, the heaviest sampled stacks from a
//!   collapsed-stacks file written by `--profile`;
//! - with `--html <out>`, a self-contained zero-dependency HTML
//!   learning-dynamics dashboard (inline SVG charts, no scripts).
//!
//! Invoked without a ledger path, it auto-discovers the newest
//! `LEDGER_*.jsonl` in the working directory (and refuses, listing the
//! candidates, when several share the newest timestamp).
//!
//! A ledger without a `run_end` line (crashed run) still reports
//! everything up to the crash — that is the point of a flushed JSONL
//! stream.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::SystemTime;

use rhsd_obs::json::{parse, Value};
use rhsd_obs::SpanTree;

/// One per-layer dynamics row from an `epoch` event's `layers` array.
#[derive(Debug, Clone)]
struct LayerRow {
    key: String,
    act_mean_abs: f64,
    dead_frac: f64,
    saturated_frac: f64,
    flow_grad_norm: f64,
    grad_norm: f64,
    update_ratio: f64,
    weight_norm: f64,
}

/// One `epoch` event. Entropies are `None` on pre-/8 ledgers, which
/// must keep rendering.
#[derive(Debug)]
struct EpochRow {
    epoch: u64,
    mean_loss: f64,
    grad_norm: f64,
    lr: f64,
    pred_entropy: Option<f64>,
    label_entropy: Option<f64>,
    layers: Vec<LayerRow>,
}

/// One divergence-sentinel trip: `(epoch, reason, detail, action)`.
type SentinelRow = (u64, String, String, String);

/// Everything extracted from one ledger file.
#[derive(Debug, Default)]
struct LedgerRun {
    manifest: Vec<(String, String)>,
    spans: Vec<(String, f64)>,
    epochs: Vec<EpochRow>,
    sentinels: Vec<SentinelRow>,
    evals: Vec<(String, String, f64, u64, f64)>,
    status: Option<String>,
    wall_secs: Option<f64>,
    counters: Vec<(String, u64)>,
    /// Lines that failed to parse (truncated tail of a crashed run).
    bad_lines: usize,
}

fn parse_ledger(text: &str) -> LedgerRun {
    let mut run = LedgerRun::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse(line) else {
            run.bad_lines += 1;
            continue;
        };
        match v.get("event").and_then(Value::as_str) {
            Some("run_start") => {
                for key in [
                    "bin", "seed", "config", "effort", "threads", "host", "version",
                ] {
                    if let Some(val) = v.get(key) {
                        let rendered = match val {
                            Value::Str(s) => s.clone(),
                            other => format!("{other:?}")
                                .trim_start_matches("Num(")
                                .trim_end_matches(')')
                                .to_owned(),
                        };
                        run.manifest.push((key.to_owned(), rendered));
                    }
                }
            }
            Some("span_close") => {
                let path = v.get("path").and_then(Value::as_str).unwrap_or("");
                // pre-`path` ledgers: fall back to the flat span name
                let path = if path.is_empty() {
                    v.get("name").and_then(Value::as_str).unwrap_or("")
                } else {
                    path
                };
                let dur = v.get("dur_secs").and_then(Value::as_f64).unwrap_or(0.0);
                if !path.is_empty() {
                    run.spans.push((path.to_owned(), dur));
                }
            }
            Some("epoch") => {
                let f = |key: &str| v.get(key).and_then(Value::as_f64);
                let layers = v
                    .get("layers")
                    .and_then(Value::as_arr)
                    .map(|rows| {
                        rows.iter()
                            .filter_map(|l| {
                                let g = |key: &str| l.get(key).and_then(Value::as_f64);
                                Some(LayerRow {
                                    key: l.get("key")?.as_str()?.to_owned(),
                                    act_mean_abs: g("act_mean_abs")?,
                                    dead_frac: g("dead_frac")?,
                                    saturated_frac: g("saturated_frac")?,
                                    flow_grad_norm: g("flow_grad_norm")?,
                                    grad_norm: g("grad_norm")?,
                                    update_ratio: g("update_ratio")?,
                                    weight_norm: g("weight_norm")?,
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                run.epochs.push(EpochRow {
                    epoch: v.get("epoch").and_then(Value::as_u64).unwrap_or(0),
                    mean_loss: f("mean_loss").unwrap_or(f64::NAN),
                    grad_norm: f("grad_norm").unwrap_or(f64::NAN),
                    lr: f("lr").unwrap_or(f64::NAN),
                    pred_entropy: f("pred_entropy"),
                    label_entropy: f("label_entropy"),
                    layers,
                });
            }
            Some("sentinel") => {
                let s = |key: &str| v.get(key).and_then(Value::as_str).unwrap_or("?").to_owned();
                run.sentinels.push((
                    v.get("epoch").and_then(Value::as_u64).unwrap_or(0),
                    s("reason"),
                    s("detail"),
                    s("action"),
                ));
            }
            Some("eval") => {
                run.evals.push((
                    v.get("detector")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    v.get("case")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    v.get("accuracy_pct").and_then(Value::as_f64).unwrap_or(0.0),
                    v.get("false_alarms").and_then(Value::as_u64).unwrap_or(0),
                    v.get("seconds").and_then(Value::as_f64).unwrap_or(0.0),
                ));
            }
            Some("run_end") => {
                run.status = v.get("status").and_then(Value::as_str).map(str::to_owned);
                run.wall_secs = v.get("wall_secs").and_then(Value::as_f64);
                if let Some(Value::Obj(fields)) = v.get("counters") {
                    for (k, val) in fields {
                        if let Some(n) = val.as_u64() {
                            run.counters.push((k.clone(), n));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    run
}

/// The cache families surfaced in the report, in display order.
const CACHE_FAMILIES: [&str; 4] = ["region_tile", "stem_feature", "aerial_dedup", "workspace"];

fn render_caches(counters: &[(String, u64)], out: &mut String) {
    let get = |name: String| {
        counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let mut any = false;
    for family in CACHE_FAMILIES {
        let hits = get(format!("cache.{family}.hits"));
        let misses = get(format!("cache.{family}.misses"));
        let evictions = get(format!("cache.{family}.evictions"));
        let bytes = get(format!("cache.{family}.bytes"));
        let total = hits + misses;
        if total == 0 && evictions == 0 && bytes == 0 {
            continue;
        }
        if !any {
            let _ = writeln!(out, "\ncache efficiency:");
            any = true;
        }
        let rate = if total > 0 {
            format!("{:5.1}%", 100.0 * hits as f64 / total as f64)
        } else {
            "    —".to_owned()
        };
        let _ = writeln!(
            out,
            "  {family:<13} {hits:>9} hits {misses:>9} misses {evictions:>7} evicted  \
             {rate} hit rate  {} reused",
            fmt_bytes(bytes)
        );
    }
    if !any {
        let _ = writeln!(
            out,
            "\ncache efficiency: (no cache.* counters in the ledger — run \
             with observability enabled)"
        );
    }
}

/// Renders the training-dynamics section: the per-epoch trajectory, the
/// per-layer table from the last epoch that sampled layer stats, and
/// any sentinel trips. Silent when the ledger has no `epoch` events
/// (inference-only runs).
fn render_training(run: &LedgerRun, out: &mut String) {
    if run.epochs.is_empty() && run.sentinels.is_empty() {
        return;
    }
    if !run.epochs.is_empty() {
        let _ = writeln!(out, "\ntraining dynamics ({} epoch(s)):", run.epochs.len());
        let _ = writeln!(
            out,
            "  {:>5} {:>10} {:>10} {:>9} {:>7} {:>8}",
            "epoch", "loss", "grad-norm", "lr", "pred-H", "label-H"
        );
        let ent = |e: Option<f64>| match e {
            Some(x) => format!("{x:.3}"),
            None => "—".to_owned(),
        };
        for e in &run.epochs {
            let _ = writeln!(
                out,
                "  {:>5} {:>10.4} {:>10.4} {:>9.5} {:>7} {:>8}",
                e.epoch,
                e.mean_loss,
                e.grad_norm,
                e.lr,
                ent(e.pred_entropy),
                ent(e.label_entropy),
            );
        }
        if let Some(last) = run.epochs.iter().rev().find(|e| !e.layers.is_empty()) {
            let _ = writeln!(out, "\n  layer dynamics (epoch {}, sampled):", last.epoch);
            let _ = writeln!(
                out,
                "  {:<26} {:>9} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
                "layer", "|act|", "dead%", "sat%", "flow-g", "grad", "upd/w", "|w|"
            );
            for l in &last.layers {
                let _ = writeln!(
                    out,
                    "  {:<26} {:>9.4} {:>6.1} {:>6.1} {:>9.3e} {:>9.3e} {:>9.3e} {:>9.3}",
                    l.key,
                    l.act_mean_abs,
                    100.0 * l.dead_frac,
                    100.0 * l.saturated_frac,
                    l.flow_grad_norm,
                    l.grad_norm,
                    l.update_ratio,
                    l.weight_norm,
                );
            }
        }
    }
    if !run.sentinels.is_empty() {
        let _ = writeln!(out, "\nsentinel trips:");
        for (epoch, reason, detail, action) in &run.sentinels {
            // The ledger's detail string repeats the epoch prefix; drop it
            // since the line already leads with the epoch.
            let detail = detail
                .strip_prefix(&format!("epoch {epoch}: "))
                .unwrap_or(detail);
            let _ = writeln!(out, "  epoch {epoch}  {reason} ({action}): {detail}");
        }
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Parses a collapsed-stacks file into `(path, samples)` pairs sorted by
/// sample count descending. Malformed lines are skipped.
fn parse_collapsed(text: &str) -> Vec<(String, u64)> {
    let mut stacks: Vec<(String, u64)> = text
        .lines()
        .filter_map(|line| {
            let (path, count) = line.rsplit_once(' ')?;
            let count: u64 = count.parse().ok()?;
            if path.is_empty() {
                return None;
            }
            Some((path.to_owned(), count))
        })
        .collect();
    stacks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    stacks
}

/// Pure core: renders the full report from the ledger text and an
/// optional collapsed-stacks profile text.
pub fn render(ledger_text: &str, profile_text: Option<&str>, top: usize) -> String {
    let run = parse_ledger(ledger_text);
    let mut o = String::new();

    let _ = writeln!(o, "run report");
    for (k, v) in &run.manifest {
        let _ = writeln!(o, "  {k:<9} {v}");
    }
    match (&run.status, run.wall_secs) {
        (Some(status), Some(wall)) => {
            let _ = writeln!(o, "  status    {status} after {wall:.2}s");
        }
        _ => {
            let _ = writeln!(
                o,
                "  status    (no run_end line — crashed or still running)"
            );
        }
    }
    if run.bad_lines > 0 {
        let _ = writeln!(o, "  ({} unparseable line(s) skipped)", run.bad_lines);
    }

    let tree = SpanTree::from_paths(run.spans.iter().map(|(p, d)| (p.as_str(), *d, 0u64)));
    let _ = writeln!(o);
    o.push_str(&tree.render());
    if !tree.is_empty() {
        let _ = writeln!(o, "\ntop exclusive time:");
        for (path, secs, count) in tree.top_exclusive(top) {
            let _ = writeln!(o, "  {:>9.3}s  {count:>7} call(s)  {path}", secs);
        }
    }

    render_caches(&run.counters, &mut o);
    render_training(&run, &mut o);

    if !run.evals.is_empty() {
        let _ = writeln!(o, "\nevaluation:");
        let _ = writeln!(
            o,
            "  {:<14} {:<10} {:>9} {:>6} {:>10}",
            "detector", "case", "accuracy", "FA", "seconds"
        );
        for (det, case, acc, fa, secs) in &run.evals {
            let _ = writeln!(o, "  {det:<14} {case:<10} {acc:>8.2}% {fa:>6} {secs:>10.3}",);
        }
    }

    if let Some(text) = profile_text {
        let stacks = parse_collapsed(text);
        let total: u64 = stacks.iter().map(|(_, c)| c).sum();
        let _ = writeln!(o, "\nsampling profile ({total} busy samples):");
        if stacks.is_empty() {
            let _ = writeln!(o, "  (no stacks in the collapsed file)");
        }
        for (path, count) in stacks.iter().take(top) {
            let pct = 100.0 * *count as f64 / total.max(1) as f64;
            let _ = writeln!(o, "  {count:>7} ({pct:5.1}%)  {path}");
        }
    }
    o
}

// ---------------------------------------------------------------------
// HTML learning-dynamics dashboard
// ---------------------------------------------------------------------

/// Maximum per-layer curves in one chart; beyond that the layers with
/// the largest final gradient norm win and the cut is announced.
const MAX_LAYER_CURVES: usize = 12;

/// One named series of `(x, y)` points for an SVG chart.
type Series = (String, Vec<(f64, f64)>);

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Deterministic series hue (FNV-1a over the name) — same idiom as the
/// flame chart so layer colours are stable across reports.
fn color_hue(name: &str) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % 360) as u32
}

/// Renders one inline SVG line chart (multi-series, linear axes, min/max
/// labels, no scripts). Non-finite points are dropped; an all-empty
/// chart renders a placeholder note instead of a broken viewBox.
fn svg_chart(title: &str, series: &[Series]) -> String {
    const W: f64 = 460.0;
    const H: f64 = 180.0;
    const PAD_L: f64 = 46.0;
    const PAD_R: f64 = 8.0;
    const PAD_T: f64 = 8.0;
    const PAD_B: f64 = 22.0;
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "<div class=\"card\">");
    let _ = writeln!(out, "<h2>{}</h2>", html_escape(title));
    if points.is_empty() {
        let _ = writeln!(out, "<p class=\"meta\">(no data)</p>\n</div>");
        return out;
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for (x, y) in &points {
        x0 = x0.min(*x);
        x1 = x1.max(*x);
        y0 = y0.min(*y);
        y1 = y1.max(*y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
        y0 -= 1.0;
    }
    let sx = |x: f64| PAD_L + (x - x0) / (x1 - x0) * (W - PAD_L - PAD_R);
    let sy = |y: f64| H - PAD_B - (y - y0) / (y1 - y0) * (H - PAD_T - PAD_B);
    let _ = writeln!(
        out,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\">"
    );
    let _ = writeln!(
        out,
        "<rect x=\"{PAD_L}\" y=\"{PAD_T}\" width=\"{}\" height=\"{}\" class=\"plot\"/>",
        W - PAD_L - PAD_R,
        H - PAD_T - PAD_B
    );
    for (name, pts) in series {
        let finite: Vec<(f64, f64)> = pts
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if finite.is_empty() {
            continue;
        }
        let path: Vec<String> = finite
            .iter()
            .map(|(x, y)| format!("{:.1},{:.1}", sx(*x), sy(*y)))
            .collect();
        let hue = color_hue(name);
        let _ = writeln!(
            out,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"hsl({hue},70%,45%)\" \
             stroke-width=\"1.5\"><title>{}</title></polyline>",
            path.join(" "),
            html_escape(name),
        );
    }
    for (label, x, y, anchor) in [
        (format!("{y1:.3}"), PAD_L - 4.0, PAD_T + 8.0, "end"),
        (format!("{y0:.3}"), PAD_L - 4.0, H - PAD_B, "end"),
        (format!("{x0:.0}"), PAD_L, H - 6.0, "start"),
        (format!("{x1:.0}"), W - PAD_R, H - 6.0, "end"),
    ] {
        let _ = writeln!(
            out,
            "<text x=\"{x:.1}\" y=\"{y:.1}\" text-anchor=\"{anchor}\" class=\"ax\">{label}</text>"
        );
    }
    let _ = writeln!(out, "</svg>");
    if series.len() > 1 {
        let _ = write!(out, "<p class=\"legend\">");
        for (name, _) in series {
            let hue = color_hue(name);
            let _ = write!(
                out,
                "<span><i style=\"background:hsl({hue},70%,45%)\"></i>{}</span> ",
                html_escape(name)
            );
        }
        let _ = writeln!(out, "</p>");
    }
    let _ = writeln!(out, "</div>");
    out
}

/// Per-layer series for `field`, one per layer key (first-seen order),
/// trimmed to [`MAX_LAYER_CURVES`] by final gradient norm.
fn layer_series(run: &LedgerRun, field: fn(&LayerRow) -> f64) -> (Vec<Series>, usize) {
    let mut keys: Vec<String> = Vec::new();
    for e in &run.epochs {
        for l in &e.layers {
            if !keys.contains(&l.key) {
                keys.push(l.key.clone());
            }
        }
    }
    let total = keys.len();
    if total > MAX_LAYER_CURVES {
        // Rank by the layer's last reported gradient norm, keep input order.
        let last_grad = |key: &String| -> f64 {
            run.epochs
                .iter()
                .rev()
                .flat_map(|e| &e.layers)
                .find(|l| &l.key == key)
                .map(|l| l.grad_norm)
                .unwrap_or(0.0)
        };
        let mut ranked = keys.clone();
        ranked.sort_by(|a, b| {
            last_grad(b)
                .partial_cmp(&last_grad(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let keep: Vec<String> = ranked.into_iter().take(MAX_LAYER_CURVES).collect();
        keys.retain(|k| keep.contains(k));
    }
    let series = keys
        .into_iter()
        .map(|key| {
            let pts = run
                .epochs
                .iter()
                .filter_map(|e| {
                    e.layers
                        .iter()
                        .find(|l| l.key == key)
                        .map(|l| (e.epoch as f64, field(l)))
                })
                .collect();
            (key, pts)
        })
        .collect();
    (series, total)
}

/// Pure core of `--html`: the self-contained learning-dynamics
/// dashboard (inline CSS + SVG, no scripts, no external assets).
pub fn render_html(ledger_text: &str, title: &str) -> String {
    let run = parse_ledger(ledger_text);
    let mut html = String::with_capacity(16 * 1024);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    html.push_str(&format!("<title>{}</title>\n", html_escape(title)));
    html.push_str(
        "<style>\n\
         body{font:13px/1.4 system-ui,sans-serif;margin:16px;background:#fff;color:#222}\n\
         .meta{color:#666;margin:6px 0 12px}\n\
         .cards{display:flex;flex-wrap:wrap;gap:12px}\n\
         .card{border:1px solid #ccc;border-radius:4px;padding:8px 12px}\n\
         .card h2{font-size:13px;margin:0 0 6px}\n\
         .plot{fill:#fafafa;stroke:#ddd}\n\
         .ax{font-size:10px;fill:#666}\n\
         .legend{font-size:11px;color:#444;max-width:460px}\n\
         .legend i{display:inline-block;width:9px;height:9px;margin-right:3px;\
         border-radius:2px}\n\
         .legend span{margin-right:10px;white-space:nowrap}\n\
         table{border-collapse:collapse;font-size:12px;margin-top:8px}\n\
         th,td{border:1px solid #ddd;padding:2px 8px;text-align:right}\n\
         th:first-child,td:first-child{text-align:left}\n\
         .trip{color:#a00;font-weight:600}\n\
         </style>\n</head>\n<body>\n",
    );
    html.push_str(&format!("<h1>{}</h1>\n", html_escape(title)));
    let meta: Vec<String> = run
        .manifest
        .iter()
        .map(|(k, v)| format!("{}: {}", html_escape(k), html_escape(v)))
        .collect();
    let status = match (&run.status, run.wall_secs) {
        (Some(s), Some(w)) => format!("status: {} after {w:.2}s", html_escape(s)),
        _ => "status: no run_end (crashed or still running)".to_owned(),
    };
    html.push_str(&format!(
        "<p class=\"meta\">{} &middot; {status}</p>\n",
        meta.join(" &middot; ")
    ));

    if !run.sentinels.is_empty() {
        html.push_str("<p class=\"trip\">sentinel trips:</p>\n<ul>\n");
        for (epoch, reason, detail, action) in &run.sentinels {
            let detail = detail
                .strip_prefix(&format!("epoch {epoch}: "))
                .unwrap_or(detail);
            html.push_str(&format!(
                "<li class=\"trip\">epoch {epoch} — {} ({}): {}</li>\n",
                html_escape(reason),
                html_escape(action),
                html_escape(detail),
            ));
        }
        html.push_str("</ul>\n");
    }

    if run.epochs.is_empty() {
        html.push_str(
            "<p class=\"meta\">(no epoch events in this ledger — \
                       nothing trained)</p>\n</body>\n</html>\n",
        );
        return html;
    }

    let per_epoch = |f: fn(&EpochRow) -> f64| -> Vec<(f64, f64)> {
        run.epochs.iter().map(|e| (e.epoch as f64, f(e))).collect()
    };
    html.push_str("<div class=\"cards\">\n");
    html.push_str(&svg_chart(
        "training loss",
        &[("mean_loss".to_owned(), per_epoch(|e| e.mean_loss))],
    ));
    html.push_str(&svg_chart(
        "learning rate",
        &[("lr".to_owned(), per_epoch(|e| e.lr))],
    ));
    html.push_str(&svg_chart(
        "global gradient norm",
        &[("grad_norm".to_owned(), per_epoch(|e| e.grad_norm))],
    ));
    html.push_str(&svg_chart(
        "prediction vs label entropy (bits)",
        &[
            (
                "pred_entropy".to_owned(),
                run.epochs
                    .iter()
                    .filter_map(|e| e.pred_entropy.map(|y| (e.epoch as f64, y)))
                    .collect(),
            ),
            (
                "label_entropy".to_owned(),
                run.epochs
                    .iter()
                    .filter_map(|e| e.label_entropy.map(|y| (e.epoch as f64, y)))
                    .collect(),
            ),
        ],
    ));
    let (grad_curves, total_layers) = layer_series(&run, |l| l.grad_norm);
    html.push_str(&svg_chart("per-layer gradient norm", &grad_curves));
    let (dead_curves, _) = layer_series(&run, |l| l.dead_frac);
    html.push_str(&svg_chart("per-layer dead-ReLU fraction", &dead_curves));
    html.push_str("</div>\n");
    if total_layers > MAX_LAYER_CURVES {
        html.push_str(&format!(
            "<p class=\"meta\">layer charts show the {MAX_LAYER_CURVES} layers with the \
             largest final gradient norm (of {total_layers}); the full table is below.</p>\n"
        ));
    }

    if let Some(last) = run.epochs.iter().rev().find(|e| !e.layers.is_empty()) {
        html.push_str(&format!(
            "<h2>layer dynamics — epoch {}</h2>\n<table>\n<tr><th>layer</th>\
             <th>|act|</th><th>dead %</th><th>sat %</th><th>flow ‖g‖</th>\
             <th>‖g‖</th><th>upd/w</th><th>‖w‖</th></tr>\n",
            last.epoch
        ));
        for l in &last.layers {
            html.push_str(&format!(
                "<tr><td>{}</td><td>{:.4}</td><td>{:.1}</td><td>{:.1}</td>\
                 <td>{:.3e}</td><td>{:.3e}</td><td>{:.3e}</td><td>{:.3}</td></tr>\n",
                html_escape(&l.key),
                l.act_mean_abs,
                100.0 * l.dead_frac,
                100.0 * l.saturated_frac,
                l.flow_grad_norm,
                l.grad_norm,
                l.update_ratio,
                l.weight_norm,
            ));
        }
        html.push_str("</table>\n");
    }
    html.push_str("</body>\n</html>\n");
    html
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

/// Picks the unique newest candidate by mtime. Pure so the ambiguity
/// rules are unit-testable without touching the filesystem clock.
fn pick_newest(mut candidates: Vec<(String, SystemTime)>) -> Result<String, String> {
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    match candidates.as_slice() {
        [] => Err("no LEDGER_*.jsonl found in the working directory — \
                   pass a ledger path"
            .to_owned()),
        [(only, _)] => Ok(only.clone()),
        [(first, t0), (_, t1), ..] if t0 != t1 => Ok(first.clone()),
        _ => {
            let newest = candidates[0].1;
            let tied: Vec<&str> = candidates
                .iter()
                .filter(|(_, t)| *t == newest)
                .map(|(n, _)| n.as_str())
                .collect();
            Err(format!(
                "ambiguous: {} ledgers share the newest timestamp ({}) — \
                 pass one explicitly",
                tied.len(),
                tied.join(", ")
            ))
        }
    }
}

/// Scans `dir` for `LEDGER_*.jsonl` files and returns the newest.
fn discover_ledger(dir: &Path) -> Result<PathBuf, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot scan {} for ledgers: {e}", dir.display()))?;
    let mut candidates = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !(name.starts_with("LEDGER_") && name.ends_with(".jsonl")) {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        candidates.push((name.to_owned(), mtime));
    }
    pick_newest(candidates).map(|name| dir.join(name))
}

/// CLI entry point: `cargo xtask report [<ledger.jsonl>]
/// [--profile <collapsed>] [--top <n>] [--html <out.html>]`.
pub fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut ledger: Option<PathBuf> = None;
    let mut profile: Option<PathBuf> = None;
    let mut html_out: Option<PathBuf> = None;
    let mut top = 8usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => {
                let v = it.next().ok_or("--profile needs a file path")?;
                profile = Some(PathBuf::from(v));
            }
            "--html" => {
                let v = it.next().ok_or("--html needs an output path")?;
                html_out = Some(PathBuf::from(v));
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a count")?;
                top = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--top: `{v}` is not a positive integer"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown report option `{other}`"));
            }
            path if ledger.is_none() => ledger = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected extra argument `{extra}`")),
        }
    }
    let ledger = match ledger {
        Some(path) => path,
        None => {
            let found = discover_ledger(Path::new("."))?;
            eprintln!("report: using {}", found.display());
            found
        }
    };
    let ledger_text = read(&ledger)?;
    let profile_text = match &profile {
        Some(p) => Some(read(p)?),
        None => None,
    };
    print!("{}", render(&ledger_text, profile_text.as_deref(), top));
    if let Some(out) = html_out {
        let title = format!("learning dynamics — {}", ledger.display());
        let html = render_html(&ledger_text, &title);
        std::fs::write(&out, html).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        eprintln!("report: wrote {}", out.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> String {
        [
            r#"{"event":"run_start","seq":0,"t":0,"bin":"repro_quick","seed":103,"config":"demo","effort":"Quick","host":"linux/x86_64","version":"0.1.0","threads":4}"#,
            // old-style epoch event (pre-/8 ledger): no entropies, no layers
            r#"{"event":"epoch","seq":1,"t":0.5,"epoch":0,"mean_loss":0.8,"mean_cpn_cls":0.3,"mean_cpn_reg":0.2,"mean_refine_cls":0.3,"grad_norm":2.0,"lr":0.01,"samples":8}"#,
            // new-style epoch event with entropies and per-layer rows
            r#"{"event":"epoch","seq":2,"t":0.9,"epoch":1,"mean_loss":0.6,"mean_cpn_cls":0.2,"mean_cpn_reg":0.15,"mean_refine_cls":0.25,"grad_norm":1.5,"lr":0.009,"samples":8,"pred_entropy":0.62,"label_entropy":0.97,"layers":[{"key":"backbone/Conv2d#1","act_mean_abs":0.25,"dead_frac":0.125,"saturated_frac":0.0,"flow_grad_norm":1.2,"grad_norm":0.8,"update_ratio":0.004,"weight_norm":3.5},{"key":"refine/Linear#30","act_mean_abs":1.5,"dead_frac":0.0,"saturated_frac":0.03,"flow_grad_norm":0.4,"grad_norm":0.2,"update_ratio":0.001,"weight_norm":2.0}]}"#,
            r#"{"event":"sentinel","seq":3,"t":0.95,"epoch":1,"reason":"loss_spike","detail":"loss 9.0 is 4.0x the window median 0.7","action":"warn"}"#,
            r#"{"event":"span_close","seq":4,"t":1.0,"name":"raster","path":"scan;raster","dur_secs":0.25,"depth":1}"#,
            r#"{"event":"span_close","seq":5,"t":1.5,"name":"scan","path":"scan","dur_secs":1.0,"depth":0}"#,
            r#"{"event":"eval","seq":6,"t":2.0,"detector":"Ours","case":"Case2","accuracy_pct":87.5,"false_alarms":9,"seconds":1.25}"#,
            r#"{"event":"run_end","seq":7,"t":2.5,"status":"ok","wall_secs":2.5,"counters":{"cache.region_tile.hits":18,"cache.region_tile.misses":18,"cache.stem_feature.hits":3,"cache.stem_feature.misses":9,"cache.stem_feature.bytes":4096},"peaks":{}}"#,
        ]
        .join("\n")
    }

    #[test]
    fn report_renders_manifest_tree_caches_and_evals() {
        let out = render(&sample_ledger(), None, 8);
        assert!(out.contains("repro_quick"), "{out}");
        assert!(out.contains("status    ok after 2.50s"), "{out}");
        // span tree with both nodes and exclusive attribution
        assert!(out.contains("scan"), "{out}");
        assert!(out.contains("raster"), "{out}");
        assert!(out.contains("top exclusive time:"), "{out}");
        // cache hit rates from run_end counters
        assert!(out.contains("region_tile"), "{out}");
        assert!(out.contains(" 50.0% hit rate"), "{out}");
        assert!(out.contains("stem_feature"), "{out}");
        assert!(out.contains(" 25.0% hit rate"), "{out}");
        assert!(out.contains("4.00 KiB"), "{out}");
        // eval table
        assert!(out.contains("Ours"), "{out}");
        assert!(out.contains("87.50%"), "{out}");
    }

    #[test]
    fn crashed_ledger_reports_prefix_without_run_end() {
        let full = sample_ledger();
        let crashed: String = full.lines().take(5).collect::<Vec<_>>().join("\n");
        let out = render(&crashed, None, 8);
        assert!(out.contains("crashed or still running"), "{out}");
        assert!(out.contains("scan"), "spans before the crash render");
        assert!(
            out.contains("no cache.* counters"),
            "no run_end → no counters:\n{out}"
        );
    }

    #[test]
    fn profile_section_ranks_collapsed_stacks() {
        let collapsed = "scan;cpn 30\nscan;raster 10\ntrain 60\n";
        let out = render(&sample_ledger(), Some(collapsed), 2);
        assert!(out.contains("sampling profile (100 busy samples)"), "{out}");
        assert!(out.contains("60 ( 60.0%)  train"), "{out}");
        assert!(out.contains("30 ( 30.0%)  scan;cpn"), "{out}");
        // --top 2 cuts the third stack
        assert!(!out.contains("scan;raster 10"), "{out}");
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let text = format!("{}\nnot json at all\n{{\"trunc", sample_ledger());
        let out = render(&text, None, 8);
        assert!(out.contains("2 unparseable line(s) skipped"), "{out}");
    }

    #[test]
    fn training_dynamics_section_renders_epochs_layers_and_trips() {
        let out = render(&sample_ledger(), None, 8);
        assert!(out.contains("training dynamics (2 epoch(s)):"), "{out}");
        // pre-/8 epoch renders with em-dash entropies, new one with values
        assert!(out.contains("0.620"), "pred entropy column:\n{out}");
        assert!(out.contains("0.970"), "label entropy column:\n{out}");
        assert!(out.contains("—"), "old epoch renders placeholder:\n{out}");
        // layer table comes from the last epoch carrying layer rows
        assert!(out.contains("layer dynamics (epoch 1, sampled):"), "{out}");
        assert!(out.contains("backbone/Conv2d#1"), "{out}");
        assert!(out.contains("refine/Linear#30"), "{out}");
        assert!(out.contains("12.5"), "dead fraction as percent:\n{out}");
        // sentinel trip with reason, action and detail
        assert!(out.contains("sentinel trips:"), "{out}");
        assert!(
            out.contains("epoch 1  loss_spike (warn): loss 9.0 is 4.0x the window median 0.7"),
            "{out}"
        );
    }

    #[test]
    fn inference_only_ledger_has_no_training_section() {
        let lines: String = sample_ledger()
            .lines()
            .filter(|l| !l.contains("\"epoch\"") && !l.contains("\"sentinel\""))
            .collect::<Vec<_>>()
            .join("\n");
        let out = render(&lines, None, 8);
        assert!(!out.contains("training dynamics"), "{out}");
        assert!(!out.contains("sentinel trips"), "{out}");
    }

    #[test]
    fn html_dashboard_is_self_contained_and_escaped() {
        let html = render_html(&sample_ledger(), "dyn \"report\" & co");
        assert!(html.starts_with("<!DOCTYPE html>"), "doctype first");
        assert!(html.contains("dyn &quot;report&quot; &amp; co"));
        // zero-dep contract: no scripts, no external references
        assert!(!html.contains("<script"), "must not contain scripts");
        assert!(!html.contains("http://"), "no external assets");
        assert!(!html.contains("https://"), "no external assets");
        // the four core charts plus the per-layer pair
        for chart in [
            "training loss",
            "learning rate",
            "global gradient norm",
            "prediction vs label entropy",
            "per-layer gradient norm",
            "per-layer dead-ReLU fraction",
        ] {
            assert!(html.contains(chart), "missing chart {chart}:\n{html}");
        }
        assert!(html.contains("<polyline"), "curves are SVG polylines");
        assert!(html.contains("backbone/Conv2d#1"), "layer table present");
        assert!(html.contains("loss_spike"), "sentinel trip surfaced");
    }

    #[test]
    fn html_dashboard_handles_a_ledger_without_epochs() {
        let html = render_html(
            r#"{"event":"run_start","seq":0,"t":0,"bin":"x","seed":1}"#,
            "empty",
        );
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("no epoch events"), "{html}");
    }

    #[test]
    fn newest_ledger_wins_and_ties_are_ambiguous() {
        use std::time::{Duration, UNIX_EPOCH};
        let t = |secs: u64| UNIX_EPOCH + Duration::from_secs(secs);
        assert!(pick_newest(vec![]).is_err());
        assert_eq!(
            pick_newest(vec![("LEDGER_a.jsonl".into(), t(10))]).as_deref(),
            Ok("LEDGER_a.jsonl")
        );
        assert_eq!(
            pick_newest(vec![
                ("LEDGER_old.jsonl".into(), t(10)),
                ("LEDGER_new.jsonl".into(), t(20)),
            ])
            .as_deref(),
            Ok("LEDGER_new.jsonl")
        );
        let err = pick_newest(vec![
            ("LEDGER_b.jsonl".into(), t(30)),
            ("LEDGER_a.jsonl".into(), t(30)),
            ("LEDGER_c.jsonl".into(), t(10)),
        ])
        .expect_err("tied mtimes are ambiguous");
        assert!(err.contains("ambiguous"), "{err}");
        assert!(err.contains("LEDGER_a.jsonl"), "{err}");
        assert!(err.contains("LEDGER_b.jsonl"), "{err}");
        assert!(
            !err.contains("LEDGER_c.jsonl"),
            "older files not listed: {err}"
        );
    }

    #[test]
    fn discovery_scans_a_directory_for_ledgers() {
        let dir = std::env::temp_dir().join(format!("rhsd_report_disc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("LEDGER_run.jsonl"), "{}").expect("write");
        std::fs::write(dir.join("not_a_ledger.txt"), "x").expect("write");
        let found = discover_ledger(&dir).expect("one candidate");
        assert!(found.ends_with("LEDGER_run.jsonl"), "{found:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_path_ledgers_fall_back_to_span_names() {
        let text =
            r#"{"event":"span_close","seq":0,"t":1.0,"name":"raster","dur_secs":0.25,"depth":1}"#;
        let out = render(text, None, 8);
        assert!(out.contains("raster"), "{out}");
    }
}
