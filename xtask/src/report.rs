//! `cargo xtask report`: renders a run ledger (and optionally a
//! sampling profile) as a human-readable run report.
//!
//! Reads the JSONL ledger a repro binary writes (`LEDGER_*.jsonl`),
//! reconstructs the run from its typed events, and prints:
//!
//! - the `run_start` manifest (binary, seed, effort, threads, host);
//! - the span tree aggregated from `span_close` lines — hierarchical
//!   inclusive/exclusive wall-clock attribution per stack path;
//! - the top exclusive-time span paths (where the run actually spent
//!   its time);
//! - cache-efficiency gauges from the `run_end` counters: hit/miss/
//!   eviction/byte totals and the hit rate per `cache.*` family;
//! - the evaluation table (per detector and case);
//! - with `--profile <file>`, the heaviest sampled stacks from a
//!   collapsed-stacks file written by `--profile`.
//!
//! A ledger without a `run_end` line (crashed run) still reports
//! everything up to the crash — that is the point of a flushed JSONL
//! stream.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rhsd_obs::json::{parse, Value};
use rhsd_obs::SpanTree;

/// Everything extracted from one ledger file.
#[derive(Debug, Default)]
struct LedgerRun {
    manifest: Vec<(String, String)>,
    spans: Vec<(String, f64)>,
    evals: Vec<(String, String, f64, u64, f64)>,
    status: Option<String>,
    wall_secs: Option<f64>,
    counters: Vec<(String, u64)>,
    /// Lines that failed to parse (truncated tail of a crashed run).
    bad_lines: usize,
}

fn parse_ledger(text: &str) -> LedgerRun {
    let mut run = LedgerRun::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse(line) else {
            run.bad_lines += 1;
            continue;
        };
        match v.get("event").and_then(Value::as_str) {
            Some("run_start") => {
                for key in [
                    "bin", "seed", "config", "effort", "threads", "host", "version",
                ] {
                    if let Some(val) = v.get(key) {
                        let rendered = match val {
                            Value::Str(s) => s.clone(),
                            other => format!("{other:?}")
                                .trim_start_matches("Num(")
                                .trim_end_matches(')')
                                .to_owned(),
                        };
                        run.manifest.push((key.to_owned(), rendered));
                    }
                }
            }
            Some("span_close") => {
                let path = v.get("path").and_then(Value::as_str).unwrap_or("");
                // pre-`path` ledgers: fall back to the flat span name
                let path = if path.is_empty() {
                    v.get("name").and_then(Value::as_str).unwrap_or("")
                } else {
                    path
                };
                let dur = v.get("dur_secs").and_then(Value::as_f64).unwrap_or(0.0);
                if !path.is_empty() {
                    run.spans.push((path.to_owned(), dur));
                }
            }
            Some("eval") => {
                run.evals.push((
                    v.get("detector")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    v.get("case")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    v.get("accuracy_pct").and_then(Value::as_f64).unwrap_or(0.0),
                    v.get("false_alarms").and_then(Value::as_u64).unwrap_or(0),
                    v.get("seconds").and_then(Value::as_f64).unwrap_or(0.0),
                ));
            }
            Some("run_end") => {
                run.status = v.get("status").and_then(Value::as_str).map(str::to_owned);
                run.wall_secs = v.get("wall_secs").and_then(Value::as_f64);
                if let Some(Value::Obj(fields)) = v.get("counters") {
                    for (k, val) in fields {
                        if let Some(n) = val.as_u64() {
                            run.counters.push((k.clone(), n));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    run
}

/// The cache families surfaced in the report, in display order.
const CACHE_FAMILIES: [&str; 4] = ["region_tile", "stem_feature", "aerial_dedup", "workspace"];

fn render_caches(counters: &[(String, u64)], out: &mut String) {
    let get = |name: String| {
        counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let mut any = false;
    for family in CACHE_FAMILIES {
        let hits = get(format!("cache.{family}.hits"));
        let misses = get(format!("cache.{family}.misses"));
        let evictions = get(format!("cache.{family}.evictions"));
        let bytes = get(format!("cache.{family}.bytes"));
        let total = hits + misses;
        if total == 0 && evictions == 0 && bytes == 0 {
            continue;
        }
        if !any {
            let _ = writeln!(out, "\ncache efficiency:");
            any = true;
        }
        let rate = if total > 0 {
            format!("{:5.1}%", 100.0 * hits as f64 / total as f64)
        } else {
            "    —".to_owned()
        };
        let _ = writeln!(
            out,
            "  {family:<13} {hits:>9} hits {misses:>9} misses {evictions:>7} evicted  \
             {rate} hit rate  {} reused",
            fmt_bytes(bytes)
        );
    }
    if !any {
        let _ = writeln!(
            out,
            "\ncache efficiency: (no cache.* counters in the ledger — run \
             with observability enabled)"
        );
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Parses a collapsed-stacks file into `(path, samples)` pairs sorted by
/// sample count descending. Malformed lines are skipped.
fn parse_collapsed(text: &str) -> Vec<(String, u64)> {
    let mut stacks: Vec<(String, u64)> = text
        .lines()
        .filter_map(|line| {
            let (path, count) = line.rsplit_once(' ')?;
            let count: u64 = count.parse().ok()?;
            if path.is_empty() {
                return None;
            }
            Some((path.to_owned(), count))
        })
        .collect();
    stacks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    stacks
}

/// Pure core: renders the full report from the ledger text and an
/// optional collapsed-stacks profile text.
pub fn render(ledger_text: &str, profile_text: Option<&str>, top: usize) -> String {
    let run = parse_ledger(ledger_text);
    let mut o = String::new();

    let _ = writeln!(o, "run report");
    for (k, v) in &run.manifest {
        let _ = writeln!(o, "  {k:<9} {v}");
    }
    match (&run.status, run.wall_secs) {
        (Some(status), Some(wall)) => {
            let _ = writeln!(o, "  status    {status} after {wall:.2}s");
        }
        _ => {
            let _ = writeln!(
                o,
                "  status    (no run_end line — crashed or still running)"
            );
        }
    }
    if run.bad_lines > 0 {
        let _ = writeln!(o, "  ({} unparseable line(s) skipped)", run.bad_lines);
    }

    let tree = SpanTree::from_paths(run.spans.iter().map(|(p, d)| (p.as_str(), *d, 0u64)));
    let _ = writeln!(o);
    o.push_str(&tree.render());
    if !tree.is_empty() {
        let _ = writeln!(o, "\ntop exclusive time:");
        for (path, secs, count) in tree.top_exclusive(top) {
            let _ = writeln!(o, "  {:>9.3}s  {count:>7} call(s)  {path}", secs);
        }
    }

    render_caches(&run.counters, &mut o);

    if !run.evals.is_empty() {
        let _ = writeln!(o, "\nevaluation:");
        let _ = writeln!(
            o,
            "  {:<14} {:<10} {:>9} {:>6} {:>10}",
            "detector", "case", "accuracy", "FA", "seconds"
        );
        for (det, case, acc, fa, secs) in &run.evals {
            let _ = writeln!(o, "  {det:<14} {case:<10} {acc:>8.2}% {fa:>6} {secs:>10.3}",);
        }
    }

    if let Some(text) = profile_text {
        let stacks = parse_collapsed(text);
        let total: u64 = stacks.iter().map(|(_, c)| c).sum();
        let _ = writeln!(o, "\nsampling profile ({total} busy samples):");
        if stacks.is_empty() {
            let _ = writeln!(o, "  (no stacks in the collapsed file)");
        }
        for (path, count) in stacks.iter().take(top) {
            let pct = 100.0 * *count as f64 / total.max(1) as f64;
            let _ = writeln!(o, "  {count:>7} ({pct:5.1}%)  {path}");
        }
    }
    o
}

/// CLI entry point: `cargo xtask report <ledger.jsonl>
/// [--profile <collapsed>] [--top <n>]`.
pub fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut ledger: Option<PathBuf> = None;
    let mut profile: Option<PathBuf> = None;
    let mut top = 8usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => {
                let v = it.next().ok_or("--profile needs a file path")?;
                profile = Some(PathBuf::from(v));
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a count")?;
                top = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--top: `{v}` is not a positive integer"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown report option `{other}`"));
            }
            path if ledger.is_none() => ledger = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected extra argument `{extra}`")),
        }
    }
    let ledger = ledger.ok_or("report needs a ledger path: <ledger.jsonl>")?;
    let ledger_text = read(&ledger)?;
    let profile_text = match &profile {
        Some(p) => Some(read(p)?),
        None => None,
    };
    print!("{}", render(&ledger_text, profile_text.as_deref(), top));
    Ok(ExitCode::SUCCESS)
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> String {
        [
            r#"{"event":"run_start","seq":0,"t":0,"bin":"repro_quick","seed":103,"config":"demo","effort":"Quick","host":"linux/x86_64","version":"0.1.0","threads":4}"#,
            r#"{"event":"epoch","seq":1,"t":0.5,"epoch":0,"mean_loss":0.8,"mean_cpn_cls":0.3,"mean_cpn_reg":0.2,"mean_refine_cls":0.3,"grad_norm":2.0,"lr":0.01,"samples":8}"#,
            r#"{"event":"span_close","seq":2,"t":1.0,"name":"raster","path":"scan;raster","dur_secs":0.25,"depth":1}"#,
            r#"{"event":"span_close","seq":3,"t":1.5,"name":"scan","path":"scan","dur_secs":1.0,"depth":0}"#,
            r#"{"event":"eval","seq":4,"t":2.0,"detector":"Ours","case":"Case2","accuracy_pct":87.5,"false_alarms":9,"seconds":1.25}"#,
            r#"{"event":"run_end","seq":5,"t":2.5,"status":"ok","wall_secs":2.5,"counters":{"cache.region_tile.hits":18,"cache.region_tile.misses":18,"cache.stem_feature.hits":3,"cache.stem_feature.misses":9,"cache.stem_feature.bytes":4096},"peaks":{}}"#,
        ]
        .join("\n")
    }

    #[test]
    fn report_renders_manifest_tree_caches_and_evals() {
        let out = render(&sample_ledger(), None, 8);
        assert!(out.contains("repro_quick"), "{out}");
        assert!(out.contains("status    ok after 2.50s"), "{out}");
        // span tree with both nodes and exclusive attribution
        assert!(out.contains("scan"), "{out}");
        assert!(out.contains("raster"), "{out}");
        assert!(out.contains("top exclusive time:"), "{out}");
        // cache hit rates from run_end counters
        assert!(out.contains("region_tile"), "{out}");
        assert!(out.contains(" 50.0% hit rate"), "{out}");
        assert!(out.contains("stem_feature"), "{out}");
        assert!(out.contains(" 25.0% hit rate"), "{out}");
        assert!(out.contains("4.00 KiB"), "{out}");
        // eval table
        assert!(out.contains("Ours"), "{out}");
        assert!(out.contains("87.50%"), "{out}");
    }

    #[test]
    fn crashed_ledger_reports_prefix_without_run_end() {
        let full = sample_ledger();
        let crashed: String = full.lines().take(5).collect::<Vec<_>>().join("\n");
        let out = render(&crashed, None, 8);
        assert!(out.contains("crashed or still running"), "{out}");
        assert!(out.contains("scan"), "spans before the crash render");
        assert!(
            out.contains("no cache.* counters"),
            "no run_end → no counters:\n{out}"
        );
    }

    #[test]
    fn profile_section_ranks_collapsed_stacks() {
        let collapsed = "scan;cpn 30\nscan;raster 10\ntrain 60\n";
        let out = render(&sample_ledger(), Some(collapsed), 2);
        assert!(out.contains("sampling profile (100 busy samples)"), "{out}");
        assert!(out.contains("60 ( 60.0%)  train"), "{out}");
        assert!(out.contains("30 ( 30.0%)  scan;cpn"), "{out}");
        // --top 2 cuts the third stack
        assert!(!out.contains("scan;raster 10"), "{out}");
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let text = format!("{}\nnot json at all\n{{\"trunc", sample_ledger());
        let out = render(&text, None, 8);
        assert!(out.contains("2 unparseable line(s) skipped"), "{out}");
    }

    #[test]
    fn pre_path_ledgers_fall_back_to_span_names() {
        let text =
            r#"{"event":"span_close","seq":0,"t":1.0,"name":"raster","dur_secs":0.25,"depth":1}"#;
        let out = render(text, None, 8);
        assert!(out.contains("raster"), "{out}");
    }
}
