//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! Four tasks today: `lint`, the workspace-specific static-analysis
//! gate described in DESIGN.md §Correctness tooling; `bench-diff`, the
//! benchmark regression gate over `BENCH_*.json` records;
//! `microbench`, the per-kernel timing harness that localises runtime
//! regressions to a kernel family; and `report`, which renders a run
//! ledger (plus an optional collapsed-stacks profile) as a readable run
//! report. All are kept dependency-free beyond the workspace's own
//! crates so they build instantly and work offline.

mod bench_diff;
mod lint;
mod loadgen;
mod microbench;
mod report;

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  lint [--root <dir>] [--allowlist <file>] [--format <fmt>]
       [--out <file>] [--check-allow]
      Run the workspace lint rules (L1-L13) over crates/*/src/**/*.rs
      on the token engine (lexer + scope parser).
      --root         workspace root (default: parent of the xtask crate)
      --allowlist    allowlist file (default: <root>/xtask/lint.allow)
      --format       text (default) | json (rhsd-lint-report/1) |
                     github (::error workflow annotations)
      --out          also write the JSON report to <file>
      --check-allow  fail (exit 1) when an allowlist entry or inline
                     `// lint:allow` marker no longer matches anything

  microbench [--quick] [--threads <n>] [--out <file>]
      Time the hot kernels (packed GEMM, im2col conv, litho aerial) over
      a fixed shape table — each case twice, scalar-forced then with the
      detected ISA, recording the speedup — and write a
      `rhsd-microbench/2` JSON record.
      --quick    small shape table / few reps (CI smoke mode)
      --threads  rhsd-par pool size (default: machine default)
      --out      output path (default: <workspace root>/MICROBENCH.json)

  loadgen [--addr <host:port>] [--connections <n>] [--requests <m>]
          [--mode closed|open] [--case <Case2,Case3>] [--seed <n>]
          [--expect <Case>=<file>] [--out <file>] [--shutdown] [--quick]
      Drive a running rhsd-serve with N connections x M scan requests
      (deterministic case schedule) and write a `rhsd-serve-bench/1`
      record (req/s, p50/p95/p99 latency, batch occupancy, cache hit
      rates) for bench-diff.
      --mode      closed (wait per reply; default) or open (pipeline all
                  requests, then drain — maximises batch coalescing)
      --expect    byte-compare every reply for <Case> against <file>
                  (written by `rhsd-serve --offline-scan`); any mismatch
                  fails the run (exit 1)
      --shutdown  send a graceful shutdown after collecting stats
      --quick     CI smoke shape: 2 connections x 3 requests on Case2

  bench-diff <baseline.json> <current.json> [options]
      Compare two benchmark records — Table-1 records written by
      `repro_table1 --bench-out`, or serve-throughput records written by
      `xtask loadgen` — and fail on regression past tolerance.
      --max-runtime-regress <pct>  runtime growth tolerance (default 10)
      --max-accuracy-drop <pt>     accuracy drop tolerance (default 0.5)
      --skip-runtime               ignore the machine-dependent runtime
                                   column (cross-machine CI gates)
      --min-cache-hit-rate <pct>   opt-in gate: fail when the current
                                   record's region_tile/stem_feature
                                   hit rate falls below <pct>
      --min-accuracy <pct>         opt-in gate: fail when any detector
                                   in the current record averages below
                                   <pct> percent accuracy (catches
                                   silently collapsed models)
      --max-accuracy-delta <pt>    opt-in symmetric gate: fail when any
                                   detector's accuracy moves more than
                                   <pt> points or its false-alarm count
                                   moves more than <pt> in either
                                   direction (quantised-vs-f32 checks)

  report [<ledger.jsonl>] [--profile <collapsed>] [--top <n>]
         [--html <out.html>]
      Render a JSONL run ledger as a run report: manifest, span tree
      with inclusive/exclusive time, cache hit rates, training dynamics
      (per-epoch trajectory, per-layer stats, sentinel trips), and the
      eval table. Without a path, uses the newest LEDGER_*.jsonl in the
      working directory (errors listing candidates when ambiguous).
      --profile  also summarise a collapsed-stacks file written by
                 a repro binary's --profile flag
      --top      rows in the top-exclusive/top-stacks lists (default 8)
      --html     also write a self-contained HTML learning-dynamics
                 dashboard (loss/lr/grad-norm/entropy curves, per-layer
                 tables; no scripts or external assets)

exit codes: 0 clean, 1 violations/regression found, 2 usage error or
malformed input";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("microbench") => match microbench::run(&args[1..]) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        },
        Some("bench-diff") => match bench_diff::run(&args[1..]) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        },
        Some("loadgen") => match loadgen::run(&args[1..]) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        },
        Some("report") => match report::run(&args[1..]) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        },
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown task `{other}`")),
        None => usage_error("missing task"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // CARGO_MANIFEST_DIR points at the xtask crate; the workspace root is
    // its parent. Fall back to the current directory when run directly.
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| {
            let d = PathBuf::from(d);
            d.parent().map(PathBuf::from).unwrap_or(d)
        })
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut out_path: Option<PathBuf> = None;
    let mut check_allow = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a directory"),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage_error("--allowlist needs a file"),
            },
            "--format" => match it.next() {
                Some(v) if matches!(v.as_str(), "text" | "json" | "github") => {
                    format = v.clone();
                }
                Some(v) => {
                    return usage_error(&format!(
                        "--format must be text, json or github (got `{v}`)"
                    ))
                }
                None => return usage_error("--format needs a value"),
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(PathBuf::from(v)),
                None => return usage_error("--out needs a file"),
            },
            "--check-allow" => check_allow = true,
            other => return usage_error(&format!("unknown lint option `{other}`")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let allowlist = allowlist.unwrap_or_else(|| root.join("xtask").join("lint.allow"));

    match lint::run(&root, &allowlist) {
        Ok(report) => {
            match format.as_str() {
                "json" => print!("{}", report.to_json()),
                "github" => print!("{}", report.to_github()),
                _ => print!("{report}"),
            }
            if let Some(out) = out_path {
                if let Err(e) = std::fs::write(&out, report.to_json()) {
                    eprintln!("error: write {}: {e}", out.display());
                    return ExitCode::from(2);
                }
            }
            let stale_fails = check_allow && !report.stale_allow().is_empty();
            if report.is_clean() && !stale_fails {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
