//! `cargo xtask microbench` — a zero-dependency kernel timing harness.
//!
//! Times the three kernel families the end-to-end repro spends its cycles
//! in — the packed GEMM (`rhsd_tensor::ops::matmul`), the im2col
//! convolution (`rhsd_tensor::ops::conv`), and the separable litho aerial
//! convolution (`rhsd_litho::aerial`) — over a fixed shape table, and
//! writes a JSON record next to the `BENCH_*.json` bench records. The
//! harness exists to localise regressions: when `bench-diff` flags an
//! end-to-end runtime change, the per-kernel rows here say which layer
//! moved.
//!
//! Timing protocol: one untimed warm-up iteration (fills the workspace
//! scratch pools), then `reps` timed iterations; both the minimum and the
//! mean wall time are recorded. The minimum is the stable
//! noise-resistant statistic; the mean surfaces allocator or scheduling
//! jitter. A `--quick` mode shrinks the rep counts for CI.
//!
//! Since `rhsd-microbench/2` every case is timed twice — once with the
//! kernel dispatcher forced to the scalar reference path and once on the
//! detected ISA — and carries `scalar_best_secs` plus the derived
//! `speedup` column (scalar best / dispatched best), so the SIMD win is
//! measured in the same record that tracks absolute times. Under
//! `RHSD_FORCE_SCALAR=1` both passes run the scalar path and the
//! speedup hovers at 1.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rhsd_litho::aerial::aerial_image;
use rhsd_litho::GaussianKernel;
use rhsd_tensor::ops::conv::{conv2d, ConvSpec};
use rhsd_tensor::ops::kernels::{self, Isa};
use rhsd_tensor::ops::matmul::matmul;
use rhsd_tensor::Tensor;

/// One timed kernel invocation set.
struct Case {
    /// Kernel family (`matmul` / `conv2d` / `aerial`).
    kernel: &'static str,
    /// Human-readable shape description.
    shape: String,
    /// Timed repetitions (after one warm-up).
    reps: usize,
    /// Fastest observed wall time on the dispatched ISA.
    best_secs: f64,
    /// Mean wall time over the reps on the dispatched ISA.
    mean_secs: f64,
    /// Fastest observed wall time with dispatch forced to the scalar
    /// reference kernels.
    scalar_best_secs: f64,
    /// `scalar_best_secs / best_secs` — the SIMD win for this shape.
    speedup: f64,
}

/// Deterministic pseudo-random fill, matching the style of the
/// determinism tests (no RNG dependency).
fn noise(seed: u64, i: usize) -> f32 {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 31;
    (h % 2000) as f32 / 1000.0 - 1.0
}

fn filled(dims: &[usize], seed: u64) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|i| noise(seed, i)).collect();
    Tensor::from_vec(dims, data).expect("element count matches the shape")
}

/// Times `f` over `reps` iterations after one warm-up call; a volatile
/// checksum of each result keeps the optimiser honest.
fn time_case(reps: usize, f: &mut impl FnMut() -> Tensor) -> (f64, f64) {
    let warm = f();
    std::hint::black_box(warm.as_slice().first().copied());
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(out.as_slice().first().copied());
        best = best.min(dt);
        total += dt;
    }
    (best, total / reps as f64)
}

/// Times one shape twice — scalar-forced, then on `active` — and folds
/// both into a [`Case`] row. Dispatch is left on `active` afterwards.
fn timed(
    active: Isa,
    kernel: &'static str,
    shape: String,
    reps: usize,
    mut f: impl FnMut() -> Tensor,
) -> Case {
    kernels::set_isa(Isa::Scalar);
    let (scalar_best, _) = time_case(reps, &mut f);
    kernels::set_isa(active);
    let (best, mean) = time_case(reps, &mut f);
    Case {
        kernel,
        shape,
        reps,
        best_secs: best,
        mean_secs: mean,
        scalar_best_secs: scalar_best,
        speedup: scalar_best / best.max(1e-12),
    }
}

fn run_cases(quick: bool) -> Vec<Case> {
    let active = kernels::isa();
    let mut cases = Vec::new();

    // GEMM shapes: a square sweep plus the tall-skinny im2col shape the
    // conv layers actually produce (K = c_in * k * k rows, N = out pixels).
    let gemm_shapes: &[(usize, usize, usize, usize)] = if quick {
        &[(64, 64, 64, 8), (32, 72, 1024, 8)]
    } else {
        &[
            (64, 64, 64, 40),
            (128, 128, 128, 20),
            (256, 256, 256, 8),
            (32, 72, 1024, 20),
        ]
    };
    for &(m, k, n, reps) in gemm_shapes {
        let a = filled(&[m, k], 1);
        let b = filled(&[k, n], 2);
        cases.push(timed(
            active,
            "matmul",
            format!("{m}x{k}*{k}x{n}"),
            reps,
            || matmul(&a, &b),
        ));
    }

    // The register-tile micro-kernel in isolation: a fixed 8×NR tile
    // accumulated ascending-k over one packed panel, re-run `iters`
    // times per timed call. The full `matmul` rows above dilute the
    // dispatch win with packing, im2col layout and the zero-skip edge
    // paths; this row times exactly the loop the ISA selector swaps.
    let (kc, iters, reps) = if quick {
        (256, 400, 8)
    } else {
        (256, 2000, 20)
    };
    let av: Vec<f32> = (0..kc + 8).map(|i| noise(7, i)).collect();
    let panel: Vec<f32> = (0..kc * kernels::NR).map(|i| noise(8, i)).collect();
    cases.push(timed(
        active,
        "gemm_micro",
        format!("8x{}xkc{kc} x{iters}", kernels::NR),
        reps,
        move || {
            let mut acc = [[0.0f32; kernels::NR]; 8];
            for _ in 0..iters {
                let mut idx: [usize; 8] = std::array::from_fn(|r| r);
                kernels::gemm_micro(&mut acc, &av, &mut idx, 1, &panel);
            }
            let flat: Vec<f32> = acc.iter().flatten().copied().collect();
            Tensor::from_vec([8, kernels::NR], flat).expect("tile shape matches")
        },
    ));

    // Conv shapes mirroring the extractor stem (3x3, stride 1, pad 1).
    let conv_shapes: &[(usize, usize, usize, usize)] = if quick {
        &[(8, 16, 32, 8)]
    } else {
        &[(8, 16, 32, 20), (16, 32, 32, 12), (32, 64, 16, 12)]
    };
    for &(c_in, c_out, hw, reps) in conv_shapes {
        let spec = ConvSpec::new(3, 1, 1);
        let input = filled(&[c_in, hw, hw], 3);
        let weight = filled(&[c_out, c_in, 3, 3], 4);
        let bias = filled(&[c_out], 5);
        cases.push(timed(
            active,
            "conv2d",
            format!("{c_in}x{hw}x{hw}->{c_out} k3s1p1"),
            reps,
            || conv2d(&input, &weight, Some(&bias), spec),
        ));
    }

    // Aerial shapes at the EUV nominal sigma (region-raster scale).
    let aerial_shapes: &[(usize, usize)] = if quick {
        &[(128, 8)]
    } else {
        &[(128, 20), (256, 10)]
    };
    for &(px, reps) in aerial_shapes {
        let mask = filled(&[1, px, px], 6);
        let kernel = GaussianKernel::new(3.75);
        cases.push(timed(
            active,
            "aerial",
            format!("{px}x{px} sigma3.75"),
            reps,
            || aerial_image(&mask, &kernel),
        ));
    }

    cases
}

/// Renders the record. Hand-written JSON in the style of
/// `rhsd_bench::pipeline::bench_json` — no serde in the xtask.
fn render(quick: bool, threads: usize, cases: &[Case]) -> String {
    let ws = rhsd_tensor::workspace::stats();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rhsd-microbench/2\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"isa\": \"{}\",", kernels::isa_name());
    let _ = writeln!(
        out,
        "  \"workspace\": {{\"allocs\": {}, \"bytes_reused\": {}, \"high_water_bytes\": {}}},",
        ws.allocs, ws.bytes_reused, ws.high_water
    );
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 == cases.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"reps\": {}, \"best_secs\": {:.6}, \"mean_secs\": {:.6}, \"scalar_best_secs\": {:.6}, \"speedup\": {:.3}}}{comma}",
            c.kernel, c.shape, c.reps, c.best_secs, c.mean_secs, c.scalar_best_secs, c.speedup
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Entry point for `cargo xtask microbench`.
pub fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut quick = false;
    let mut threads: Option<usize> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count")?;
                threads = Some(v.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a file")?;
                out_path = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown microbench option `{other}`")),
        }
    }
    let threads = threads.unwrap_or_else(rhsd_par::default_threads);
    rhsd_par::set_threads(threads);
    let out_path = out_path.unwrap_or_else(|| crate::default_root().join("MICROBENCH.json"));

    let cases = run_cases(quick);
    let record = render(quick, threads, &cases);

    println!("dispatched isa: {}", kernels::isa_name());
    for c in &cases {
        println!(
            "{:<8} {:<24} reps {:>3}  best {:>10.3} ms  mean {:>10.3} ms  scalar {:>10.3} ms  speedup {:>5.2}x",
            c.kernel,
            c.shape,
            c.reps,
            c.best_secs * 1e3,
            c.mean_secs * 1e3,
            c.scalar_best_secs * 1e3,
            c.speedup
        );
    }
    std::fs::write(&out_path, &record).map_err(|e| format!("write {}: {e}", out_path.display()))?;
    println!("microbench: wrote {}", out_path.display());
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cases_cover_every_kernel_family() {
        let cases = run_cases(true);
        let kernels: Vec<&str> = cases.iter().map(|c| c.kernel).collect();
        assert!(kernels.contains(&"matmul"));
        assert!(kernels.contains(&"gemm_micro"));
        assert!(kernels.contains(&"conv2d"));
        assert!(kernels.contains(&"aerial"));
        for c in &cases {
            assert!(c.best_secs.is_finite() && c.best_secs >= 0.0);
            assert!(c.mean_secs >= c.best_secs);
            assert!(c.scalar_best_secs.is_finite() && c.scalar_best_secs >= 0.0);
            assert!(c.speedup.is_finite() && c.speedup > 0.0);
        }
    }

    #[test]
    fn record_is_parseable_and_carries_the_schema() {
        let cases = vec![Case {
            kernel: "matmul",
            shape: "8x8*8x8".into(),
            reps: 3,
            best_secs: 0.001,
            mean_secs: 0.002,
            scalar_best_secs: 0.003,
            speedup: 3.0,
        }];
        let record = render(true, 2, &cases);
        let v = rhsd_obs::json::parse(&record).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("rhsd-microbench/2")
        );
        assert!(v.get("isa").and_then(|i| i.as_str()).is_some());
        let arr = v.get("cases").and_then(|c| c.as_arr()).expect("cases");
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("kernel").and_then(|k| k.as_str()),
            Some("matmul")
        );
        assert_eq!(arr[0].get("speedup").and_then(|s| s.as_f64()), Some(3.0));
        assert_eq!(
            arr[0].get("scalar_best_secs").and_then(|s| s.as_f64()),
            Some(0.003)
        );
        assert!(v.get("workspace").is_some());
    }
}
