//! `cargo xtask bench-diff`: the benchmark regression gate.
//!
//! Compares two machine-readable benchmark records (the
//! `BENCH_table1.json` files written by `repro_table1 --bench-out`,
//! schema `rhsd-bench-table/3` — older schemas without `seed` /
//! `stage_secs` / `threads` are accepted too) and fails when the current
//! run regresses past the tolerances:
//!
//! - **runtime**: any detector's average scan time grew by more than
//!   `--max-runtime-regress` percent (default 10). Runtime is
//!   machine-dependent, so CI diffs against a committed baseline pass
//!   `--skip-runtime` and gate on the deterministic columns only.
//! - **accuracy**: any detector's average accuracy dropped by more than
//!   `--max-accuracy-drop` points (default 0.5).
//! - **false alarms**: informational — printed in the table but never
//!   fails the gate on its own (FA changes surface as accuracy changes
//!   in this pipeline).
//! - **cache efficiency** (opt-in): `--min-cache-hit-rate <pct>` gates
//!   the current record's `caches` block (schema v5): the
//!   thread-count-invariant `region_tile` and `stem_feature` families
//!   must each show a hit rate of at least `<pct>` percent. A record
//!   whose gauges are all zero (produced without observability) is
//!   refused — opting into the gate without data is a misconfiguration.
//!
//! - **accuracy floor** (opt-in): `--min-accuracy <pct>` fails the gate
//!   when any detector in the *current* record averages below `<pct>`
//!   percent accuracy. This turns the 0%-accuracy loud warning into an
//!   enforceable check: a silently collapsed model (the PR-6 failure
//!   mode) cannot pass CI even when the baseline collapsed too.
//!
//! - **accuracy delta** (opt-in): `--max-accuracy-delta <pt>` fails when
//!   any detector's average accuracy moved by more than `<pt>` points in
//!   *either* direction, or its false-alarm count moved by more than
//!   `<pt>`. This is the reduced-precision gate: an int8 run diffed
//!   against an f32 baseline must track it within the bound — a drop is
//!   a quality loss and an unexplained gain is a quantisation artefact.
//!
//! A baseline detector row with 0% accuracy triggers a loud warning:
//! the accuracy gate cannot see regressions against a floor of zero, so
//! such baselines should be refreshed with a longer training schedule.
//!
//! Records produced at different `--threads` counts are **refused** for
//! runtime comparison (exit 2): parallel speedup would masquerade as a
//! runtime improvement or regression. Pass `--skip-runtime` to compare
//! the deterministic accuracy/FA columns across thread counts — those are
//! bit-identical at any thread count by design. Records predating the
//! `threads` field compare as before. Records produced at different
//! `--precision` settings (schema v7; missing field reads as `f32`) are
//! refused for runtime comparison the same way: quantised kernels have a
//! different cost profile, so pass `--skip-runtime` (usually with
//! `--max-accuracy-delta`) to compare quality columns only.
//!
//! **Serve records**: when both inputs carry the `rhsd-serve-bench/1`
//! schema (written by `cargo xtask loadgen`), the gate compares serving
//! throughput instead of detector rows: it fails when requests/sec
//! dropped, or p99 latency grew, by more than `--max-runtime-regress`
//! percent. Both columns are machine- and load-dependent, so
//! `--skip-runtime` turns the comparison into an informational report
//! (batch occupancy and cache hit rates are always printed). Serve
//! records from different thread counts or load-generator modes
//! (closed vs open loop) are refused for throughput comparison, exactly
//! like cross-thread table records. A current record reporting
//! bit-identity mismatches always fails. Mixing a table record with a
//! serve record is a usage error (exit 2).
//!
//! Exit codes: 0 clean, 1 regression, 2 malformed input / usage error.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rhsd_obs::json::{parse, Value};

/// Comparison tolerances (percentages / accuracy points).
pub struct Tolerance {
    /// Maximum allowed runtime growth, in percent of the baseline.
    pub max_runtime_regress_pct: f64,
    /// Maximum allowed accuracy drop, in percentage points.
    pub max_accuracy_drop_pt: f64,
    /// Ignore the runtime column entirely (cross-machine CI gates).
    pub skip_runtime: bool,
    /// Minimum hit rate (percent) required of the current record's
    /// deterministic cache families; `None` disables the gate.
    pub min_cache_hit_rate_pct: Option<f64>,
    /// Absolute accuracy floor (percent) every detector in the current
    /// record must clear; `None` disables the gate.
    pub min_accuracy_pct: Option<f64>,
    /// Symmetric bound on |Δaccuracy| (points) and |ΔFA| per detector;
    /// `None` disables the gate. The reduced-precision tracking gate.
    pub max_accuracy_delta_pt: Option<f64>,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            max_runtime_regress_pct: 10.0,
            max_accuracy_drop_pt: 0.5,
            skip_runtime: false,
            min_cache_hit_rate_pct: None,
            min_accuracy_pct: None,
            max_accuracy_delta_pt: None,
        }
    }
}

/// The cache families gated by `--min-cache-hit-rate`: their hit/miss
/// counts are thread-count invariant (unlike `workspace`, whose pools
/// warm per worker, or `aerial_dedup`, which is labelling-phase only).
const GATED_CACHES: [&str; 2] = ["region_tile", "stem_feature"];

/// One detector row extracted from a bench record.
#[derive(Debug, Clone, PartialEq)]
struct DetectorRow {
    name: String,
    accuracy_pct: f64,
    false_alarms: u64,
    seconds: f64,
}

/// A parsed bench record: source tag and per-detector average rows.
#[derive(Debug, Clone)]
struct BenchRecord {
    source: String,
    quick: bool,
    /// `rhsd-par` worker-thread count of the run (`None` on records
    /// predating schema v3).
    threads: Option<u64>,
    /// `(family, hits, misses)` from the `caches` block (empty on
    /// records predating schema v5).
    caches: Vec<(String, u64, u64)>,
    /// Scan-stage inference precision (schema v7; records predating the
    /// field read as `f32` — they were produced before reduced precision
    /// existed).
    precision: String,
    /// SIMD ISA the kernel dispatcher selected (schema v7; empty on
    /// older records).
    isa: String,
    detectors: Vec<DetectorRow>,
}

fn row_from(name: &str, v: &Value) -> Result<DetectorRow, String> {
    let num = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("detector `{name}`: average row missing numeric `{key}`"))
    };
    Ok(DetectorRow {
        name: name.to_owned(),
        accuracy_pct: num("accuracy_pct")?,
        false_alarms: v.get("false_alarms").and_then(Value::as_u64).unwrap_or(0),
        seconds: num("seconds")?,
    })
}

/// Parses a bench record, checking the schema tag and extracting each
/// detector's average row.
fn parse_record(text: &str, label: &str) -> Result<BenchRecord, String> {
    let v = parse(text).map_err(|pos| format!("{label}: invalid JSON at byte {pos}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{label}: missing `schema` field"))?;
    if !schema.starts_with("rhsd-bench-table/") {
        return Err(format!("{label}: unsupported schema `{schema}`"));
    }
    let detectors = v
        .get("detectors")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{label}: missing `detectors` array"))?;
    let mut rows = Vec::new();
    for d in detectors {
        let name = d
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{label}: detector entry missing `name`"))?;
        let avg = d
            .get("average")
            .ok_or_else(|| format!("{label}: detector `{name}` missing `average` row"))?;
        rows.push(row_from(name, avg).map_err(|e| format!("{label}: {e}"))?);
    }
    if rows.is_empty() {
        return Err(format!("{label}: no detectors in record"));
    }
    let mut caches = Vec::new();
    if let Some(Value::Obj(families)) = v.get("caches") {
        for (family, gauges) in families {
            let g = |key: &str| gauges.get(key).and_then(Value::as_u64).unwrap_or(0);
            caches.push((family.clone(), g("hits"), g("misses")));
        }
    }
    Ok(BenchRecord {
        source: v
            .get("source")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned(),
        quick: v.get("quick").and_then(Value::as_bool).unwrap_or(false),
        threads: v.get("threads").and_then(Value::as_u64),
        caches,
        precision: v
            .get("precision")
            .and_then(Value::as_str)
            .unwrap_or("f32")
            .to_owned(),
        isa: v
            .get("isa")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned(),
        detectors: rows,
    })
}

/// One detector's comparison outcome.
#[derive(Debug)]
struct RowDiff {
    name: String,
    accuracy_delta_pt: f64,
    fa_delta: i64,
    runtime_delta_pct: Option<f64>,
    regressions: Vec<String>,
}

/// Compares `current` against `baseline` under `tol`. Detectors present
/// in only one record are reported but never fail the gate.
fn diff(
    baseline: &BenchRecord,
    current: &BenchRecord,
    tol: &Tolerance,
) -> (Vec<RowDiff>, Vec<String>) {
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for b in &baseline.detectors {
        let Some(c) = current.detectors.iter().find(|c| c.name == b.name) else {
            notes.push(format!("detector `{}` missing from current record", b.name));
            continue;
        };
        let accuracy_delta_pt = c.accuracy_pct - b.accuracy_pct;
        let fa_delta = c.false_alarms as i64 - b.false_alarms as i64;
        let runtime_delta_pct = (!tol.skip_runtime && b.seconds > 0.0)
            .then(|| 100.0 * (c.seconds - b.seconds) / b.seconds);
        let mut regressions = Vec::new();
        if accuracy_delta_pt < -tol.max_accuracy_drop_pt {
            regressions.push(format!(
                "accuracy dropped {:.2}pt (tolerance {:.2}pt)",
                -accuracy_delta_pt, tol.max_accuracy_drop_pt
            ));
        }
        if let Some(rt) = runtime_delta_pct {
            if rt > tol.max_runtime_regress_pct {
                regressions.push(format!(
                    "runtime grew {:.1}% (tolerance {:.1}%)",
                    rt, tol.max_runtime_regress_pct
                ));
            }
        }
        if let Some(bound) = tol.max_accuracy_delta_pt {
            if accuracy_delta_pt.abs() > bound {
                regressions.push(format!(
                    "accuracy moved {accuracy_delta_pt:+.2}pt (|delta| bound {bound:.2}pt)"
                ));
            }
            if (fa_delta.abs() as f64) > bound {
                regressions.push(format!(
                    "false alarms moved {fa_delta:+} (|delta| bound {bound:.2})"
                ));
            }
        }
        rows.push(RowDiff {
            name: b.name.clone(),
            accuracy_delta_pt,
            fa_delta,
            runtime_delta_pct,
            regressions,
        });
    }
    for c in &current.detectors {
        if !baseline.detectors.iter().any(|b| b.name == c.name) {
            notes.push(format!("detector `{}` new in current record", c.name));
        }
    }
    for b in &baseline.detectors {
        if b.accuracy_pct == 0.0 {
            notes.push(format!(
                "WARNING: baseline detector `{}` reports 0% accuracy — the \
                 accuracy gate cannot see regressions against a floor of \
                 zero; refresh the baseline with a longer training schedule",
                b.name
            ));
        }
    }
    (rows, notes)
}

/// Applies the opt-in `--min-cache-hit-rate` gate to the current
/// record's deterministic cache families. Returns the per-family report
/// lines and any failures; `Err` when the gate was requested but the
/// record carries no usable gauges.
fn check_cache_hit_rates(
    current: &BenchRecord,
    min_pct: f64,
) -> Result<(Vec<String>, Vec<String>), String> {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for family in GATED_CACHES {
        let Some((_, hits, misses)) = current.caches.iter().find(|(f, _, _)| f == family) else {
            return Err(format!(
                "--min-cache-hit-rate: current record has no `caches.{family}` \
                 gauges (schema v5 record required)"
            ));
        };
        let total = hits + misses;
        if total == 0 {
            return Err(format!(
                "--min-cache-hit-rate: `caches.{family}` gauges are all zero — \
                 the record was produced without observability enabled \
                 (rerun with a ledger/trace/profile export active)"
            ));
        }
        let rate = 100.0 * *hits as f64 / total as f64;
        lines.push(format!(
            "cache {family:<13} {hits:>8} hits {misses:>8} misses  {rate:6.1}% hit rate"
        ));
        if rate < min_pct {
            failures.push(format!(
                "cache `{family}` hit rate {rate:.1}% below the {min_pct:.1}% floor"
            ));
        }
    }
    Ok((lines, failures))
}

/// Renders the human-readable comparison table.
fn render(
    baseline: &BenchRecord,
    current: &BenchRecord,
    rows: &[RowDiff],
    notes: &[String],
) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "bench-diff: {} (quick={}, precision={}) vs {} (quick={}, precision={})",
        baseline.source,
        baseline.quick,
        baseline.precision,
        current.source,
        current.quick,
        current.precision
    );
    if !baseline.isa.is_empty() || !current.isa.is_empty() {
        let tag = |s: &str| {
            if s.is_empty() {
                "?".to_owned()
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            o,
            "isa: baseline {} / current {}",
            tag(&baseline.isa),
            tag(&current.isa)
        );
    }
    let _ = writeln!(
        o,
        "{:<14} {:>12} {:>8} {:>12}  status",
        "detector", "Δacc(pt)", "ΔFA", "Δruntime"
    );
    for r in rows {
        let rt = match r.runtime_delta_pct {
            Some(pct) => format!("{pct:+.1}%"),
            None => "skipped".to_owned(),
        };
        let status = if r.regressions.is_empty() {
            "ok".to_owned()
        } else {
            format!("REGRESSION: {}", r.regressions.join("; "))
        };
        let _ = writeln!(
            o,
            "{:<14} {:>12} {:>8} {:>12}  {}",
            r.name,
            format!("{:+.2}", r.accuracy_delta_pt),
            format!("{:+}", r.fa_delta),
            rt,
            status
        );
    }
    for n in notes {
        let _ = writeln!(o, "note: {n}");
    }
    o
}

/// The two record families the gate understands.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SchemaKind {
    /// `rhsd-bench-table/*` — detector accuracy/FA/runtime rows.
    Table,
    /// `rhsd-serve-bench/*` — serve throughput/latency records.
    Serve,
}

/// Peeks at a record's `schema` tag to pick the comparison family.
fn schema_kind(text: &str, label: &str) -> Result<SchemaKind, String> {
    let v = parse(text).map_err(|pos| format!("{label}: invalid JSON at byte {pos}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{label}: missing `schema` field"))?;
    if schema.starts_with("rhsd-bench-table/") {
        Ok(SchemaKind::Table)
    } else if schema.starts_with("rhsd-serve-bench/") {
        Ok(SchemaKind::Serve)
    } else {
        Err(format!("{label}: unsupported schema `{schema}`"))
    }
}

/// A parsed `rhsd-serve-bench/1` record (written by `xtask loadgen`).
#[derive(Debug, Clone)]
struct ServeRecord {
    source: String,
    /// Load-generator mode: `closed` or `open` loop.
    mode: String,
    /// Server worker-thread count reported by the stats endpoint.
    threads: Option<u64>,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch_requests: f64,
    /// Hit rates in percent (already normalised by loadgen).
    tile_hit_rate_pct: f64,
    stem_hit_rate_pct: f64,
    bit_identity_mismatches: u64,
    /// Server-reported scan precision (missing on records predating the
    /// field: reads as `f32`).
    precision: String,
}

/// Parses a serve-throughput record, requiring the latency/throughput
/// columns the gate compares on.
fn parse_serve_record(text: &str, label: &str) -> Result<ServeRecord, String> {
    let v = parse(text).map_err(|pos| format!("{label}: invalid JSON at byte {pos}"))?;
    let num = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{label}: serve record missing numeric `{key}`"))
    };
    let opt = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    Ok(ServeRecord {
        source: v
            .get("source")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned(),
        mode: v
            .get("mode")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned(),
        threads: v.get("threads").and_then(Value::as_f64).map(|t| t as u64),
        rps: num("rps")?,
        p50_ms: opt("p50_ms"),
        p99_ms: num("p99_ms")?,
        mean_batch_requests: opt("mean_batch_requests"),
        tile_hit_rate_pct: opt("tile_hit_rate"),
        stem_hit_rate_pct: opt("stem_hit_rate"),
        bit_identity_mismatches: opt("bit_identity_mismatches") as u64,
        precision: v
            .get("precision")
            .and_then(Value::as_str)
            .unwrap_or("f32")
            .to_owned(),
    })
}

/// Serve-record comparison: throughput must not drop, and p99 latency
/// must not grow, past the runtime tolerance. Under `--skip-runtime`
/// both columns are informational only (they are machine- and
/// load-dependent, like table runtimes).
fn compare_serve(
    baseline_text: &str,
    current_text: &str,
    tol: &Tolerance,
) -> Result<(String, bool), String> {
    if tol.min_accuracy_pct.is_some() {
        return Err("--min-accuracy applies to table records only".into());
    }
    let b = parse_serve_record(baseline_text, "baseline")?;
    let c = parse_serve_record(current_text, "current")?;
    if !tol.skip_runtime {
        if let (Some(bt), Some(ct)) = (b.threads, c.threads) {
            if bt != ct {
                return Err(format!(
                    "serve records were produced at different thread counts \
                     (baseline {bt}, current {ct}); throughput and latency are \
                     not comparable — pass --skip-runtime for an informational \
                     report only"
                ));
            }
        }
        if b.mode != c.mode {
            return Err(format!(
                "serve records were produced in different load-generator modes \
                 (baseline `{}`, current `{}`); closed- and open-loop latencies \
                 are not comparable — pass --skip-runtime for an informational \
                 report only",
                b.mode, c.mode
            ));
        }
        if b.precision != c.precision {
            return Err(format!(
                "serve records were produced at different precisions \
                 (baseline `{}`, current `{}`); throughput and latency are \
                 not comparable across quantisation — pass --skip-runtime \
                 for an informational report only",
                b.precision, c.precision
            ));
        }
        if b.rps <= 0.0 || b.p99_ms <= 0.0 {
            return Err(format!(
                "baseline serve record has no usable throughput columns \
                 (rps {}, p99_ms {}); the baseline run produced no requests",
                b.rps, b.p99_ms
            ));
        }
    }
    let mut o = String::new();
    let mut regressed = false;
    let _ = writeln!(
        o,
        "bench-diff (serve): {} (mode={}, threads={}) vs {} (mode={}, threads={})",
        b.source,
        b.mode,
        b.threads.map_or("?".into(), |t| t.to_string()),
        c.source,
        c.mode,
        c.threads.map_or("?".into(), |t| t.to_string()),
    );
    let _ = writeln!(
        o,
        "{:<22} {:>12} {:>12} {:>10}  status",
        "metric", "baseline", "current", "delta"
    );
    // (metric, baseline, current, regression-when: +1 growth fails,
    //  -1 drop fails, 0 informational)
    let columns: [(&str, f64, f64, i8); 5] = [
        ("requests/sec", b.rps, c.rps, -1),
        ("p50 latency (ms)", b.p50_ms, c.p50_ms, 0),
        ("p99 latency (ms)", b.p99_ms, c.p99_ms, 1),
        (
            "mean batch (requests)",
            b.mean_batch_requests,
            c.mean_batch_requests,
            0,
        ),
        (
            "tile hit rate (%)",
            b.tile_hit_rate_pct,
            c.tile_hit_rate_pct,
            0,
        ),
    ];
    for (name, bv, cv, direction) in columns {
        let delta_pct = (bv > 0.0).then(|| 100.0 * (cv - bv) / bv);
        let gated = direction != 0 && !tol.skip_runtime;
        let status = match delta_pct {
            Some(pct) if gated && direction > 0 && pct > tol.max_runtime_regress_pct => {
                regressed = true;
                format!(
                    "REGRESSION: p99 latency grew {pct:.1}% (tolerance {:.1}%)",
                    tol.max_runtime_regress_pct
                )
            }
            Some(pct) if gated && direction < 0 && -pct > tol.max_runtime_regress_pct => {
                regressed = true;
                format!(
                    "REGRESSION: throughput dropped {:.1}% (tolerance {:.1}%)",
                    -pct, tol.max_runtime_regress_pct
                )
            }
            _ if direction != 0 && tol.skip_runtime => "skipped".to_owned(),
            _ if direction == 0 => "info".to_owned(),
            _ => "ok".to_owned(),
        };
        let _ = writeln!(
            o,
            "{:<22} {:>12.2} {:>12.2} {:>10}  {}",
            name,
            bv,
            cv,
            delta_pct.map_or("n/a".to_owned(), |p| format!("{p:+.1}%")),
            status
        );
    }
    let _ = writeln!(
        o,
        "stem hit rate: baseline {:.1}%, current {:.1}%",
        b.stem_hit_rate_pct, c.stem_hit_rate_pct
    );
    if c.bit_identity_mismatches > 0 {
        let _ = writeln!(
            o,
            "REGRESSION: current serve run reported {} bit-identity \
             mismatch(es) against the offline scan",
            c.bit_identity_mismatches
        );
        regressed = true;
    }
    if let Some(floor) = tol.min_cache_hit_rate_pct {
        for (family, rate) in [
            ("region_tile", c.tile_hit_rate_pct),
            ("stem_feature", c.stem_hit_rate_pct),
        ] {
            if rate < floor {
                let _ = writeln!(
                    o,
                    "REGRESSION: serve cache `{family}` hit rate {rate:.1}% \
                     below the {floor:.1}% floor"
                );
                regressed = true;
            }
        }
    }
    Ok((o, regressed))
}

/// Pure core of the gate: compares two record texts, returning the
/// rendered report and whether any detector regressed. Dispatches on
/// the `schema` tag: two table records compare detector rows, two
/// serve records compare throughput/latency; mixing families is an
/// error, as `Err` is for any malformed record.
pub fn compare(
    baseline_text: &str,
    current_text: &str,
    tol: &Tolerance,
) -> Result<(String, bool), String> {
    let kinds = (
        schema_kind(baseline_text, "baseline")?,
        schema_kind(current_text, "current")?,
    );
    match kinds {
        (SchemaKind::Serve, SchemaKind::Serve) => {
            return compare_serve(baseline_text, current_text, tol)
        }
        (SchemaKind::Table, SchemaKind::Table) => {}
        (b, c) => {
            return Err(format!(
                "mixed record families: baseline is a {b:?} record but current \
                 is a {c:?} record — compare table records with table records \
                 and serve records with serve records"
            ))
        }
    }
    let baseline = parse_record(baseline_text, "baseline")?;
    let current = parse_record(current_text, "current")?;
    if let (Some(b), Some(c)) = (baseline.threads, current.threads) {
        if b != c && !tol.skip_runtime {
            return Err(format!(
                "records were produced at different thread counts \
                 (baseline {b}, current {c}); runtimes are not comparable — \
                 pass --skip-runtime to gate on the thread-count-invariant \
                 accuracy columns only"
            ));
        }
    }
    if baseline.precision != current.precision && !tol.skip_runtime {
        return Err(format!(
            "records were produced at different precisions (baseline \
             `{}`, current `{}`); quantised kernels have a different cost \
             profile, so runtimes are not comparable — pass --skip-runtime \
             (with --max-accuracy-delta to bound the quality drift)",
            baseline.precision, current.precision
        ));
    }
    let (rows, notes) = diff(&baseline, &current, tol);
    let mut regressed = rows.iter().any(|r| !r.regressions.is_empty());
    let mut report = render(&baseline, &current, &rows, &notes);
    if let Some(floor) = tol.min_accuracy_pct {
        for d in &current.detectors {
            if d.accuracy_pct < floor {
                report.push_str(&format!(
                    "REGRESSION: detector `{}` averages {:.2}% accuracy, below \
                     the {floor:.1}% floor — the model likely collapsed during \
                     training (check the run ledger's sentinel events)\n",
                    d.name, d.accuracy_pct
                ));
                regressed = true;
            }
        }
    }
    if let Some(min_pct) = tol.min_cache_hit_rate_pct {
        let (lines, failures) = check_cache_hit_rates(&current, min_pct)?;
        for line in lines {
            report.push_str(&line);
            report.push('\n');
        }
        for f in failures {
            report.push_str(&format!("REGRESSION: {f}\n"));
            regressed = true;
        }
    }
    Ok((report, regressed))
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// CLI entry point: `cargo xtask bench-diff <baseline.json> <current.json>
/// [--max-runtime-regress <pct>] [--max-accuracy-drop <pt>]
/// [--skip-runtime] [--min-cache-hit-rate <pct>] [--min-accuracy <pct>]
/// [--max-accuracy-delta <pt>]`.
pub fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tol = Tolerance::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-runtime-regress" => {
                tol.max_runtime_regress_pct = num_arg(it.next(), "--max-runtime-regress")?;
            }
            "--max-accuracy-drop" => {
                tol.max_accuracy_drop_pt = num_arg(it.next(), "--max-accuracy-drop")?;
            }
            "--skip-runtime" => tol.skip_runtime = true,
            "--min-cache-hit-rate" => {
                tol.min_cache_hit_rate_pct = Some(num_arg(it.next(), "--min-cache-hit-rate")?);
            }
            "--min-accuracy" => {
                tol.min_accuracy_pct = Some(num_arg(it.next(), "--min-accuracy")?);
            }
            "--max-accuracy-delta" => {
                tol.max_accuracy_delta_pt = Some(num_arg(it.next(), "--max-accuracy-delta")?);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown bench-diff option `{other}`"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(
            "bench-diff needs exactly two record paths: <baseline.json> <current.json>".into(),
        );
    };
    let (report, regressed) = compare(&read(baseline)?, &read(current)?, &tol)
        .map_err(|e| format!("malformed record: {e}"))?;
    print!("{report}");
    Ok(if regressed {
        println!("bench-diff: FAIL (regression past tolerance)");
        ExitCode::FAILURE
    } else {
        println!("bench-diff: ok");
        ExitCode::SUCCESS
    })
}

fn num_arg(v: Option<&String>, flag: &str) -> Result<f64, String> {
    let v = v.ok_or_else(|| format!("{flag} needs a number"))?;
    let n: f64 = v
        .parse()
        .map_err(|_| format!("{flag}: `{v}` is not a number"))?;
    if n.is_finite() && n >= 0.0 {
        Ok(n)
    } else {
        Err(format!(
            "{flag}: `{v}` must be a finite non-negative number"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal valid v2 record (no `threads` field) with one detector
    /// whose average row has the given runtime and accuracy.
    fn record(secs: f64, acc: f64) -> String {
        format!(
            r#"{{
  "schema": "rhsd-bench-table/2",
  "source": "repro_table1",
  "quick": true,
  "seed": 103,
  "stage_secs": {{"eval.region_scan": {secs}}},
  "detectors": [
    {{
      "name": "Ours",
      "cases": [
        {{"case": "Case2", "accuracy_pct": {acc}, "false_alarms": 4, "seconds": {secs}}}
      ],
      "average": {{"case": "Average", "accuracy_pct": {acc}, "false_alarms": 4, "seconds": {secs}}}
    }}
  ]
}}"#
        )
    }

    /// A v3 record carrying a `threads` field.
    fn record_v3(secs: f64, acc: f64, threads: u64) -> String {
        record(secs, acc)
            .replace("rhsd-bench-table/2", "rhsd-bench-table/3")
            .replace(
                "\"seed\": 103,",
                &format!("\"seed\": 103,\n  \"threads\": {threads},"),
            )
    }

    #[test]
    fn identical_records_pass() {
        let r = record(1.0, 90.0);
        let (report, regressed) = compare(&r, &r, &Tolerance::default()).expect("valid");
        assert!(!regressed, "identical records must not regress:\n{report}");
        assert!(report.contains("Ours"));
    }

    #[test]
    fn twenty_percent_runtime_regression_fails() {
        let base = record(1.0, 90.0);
        let cur = record(1.2, 90.0);
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(regressed, "1.2x runtime must fail the 10% gate:\n{report}");
        assert!(report.contains("runtime grew"));
    }

    #[test]
    fn runtime_regression_is_ignored_with_skip_runtime() {
        let base = record(1.0, 90.0);
        let cur = record(10.0, 90.0);
        let tol = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(!regressed, "--skip-runtime must ignore runtime:\n{report}");
        assert!(report.contains("skipped"));
    }

    #[test]
    fn accuracy_drop_fails() {
        let base = record(1.0, 90.0);
        let cur = record(1.0, 89.0);
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(
            regressed,
            "1pt accuracy drop must fail the 0.5pt gate:\n{report}"
        );
        assert!(report.contains("accuracy dropped"));
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = record(1.0, 90.0);
        let cur = record(1.05, 89.8);
        let (_, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(
            !regressed,
            "5% runtime / 0.2pt accuracy drift is within tolerance"
        );
    }

    #[test]
    fn malformed_input_is_an_error() {
        let good = record(1.0, 90.0);
        assert!(compare("not json", &good, &Tolerance::default()).is_err());
        assert!(compare(
            &good,
            "{\"schema\": \"rhsd-bench-table/2\"}",
            &Tolerance::default()
        )
        .is_err());
        let wrong_schema = good.replace("rhsd-bench-table/2", "other/1");
        assert!(compare(&wrong_schema, &good, &Tolerance::default()).is_err());
        let no_avg = good.replace("\"average\"", "\"avg\"");
        assert!(compare(&good, &no_avg, &Tolerance::default()).is_err());
    }

    #[test]
    fn cross_thread_count_runtime_comparison_is_refused() {
        let base = record_v3(1.0, 90.0, 1);
        let cur = record_v3(0.3, 90.0, 4);
        let err = compare(&base, &cur, &Tolerance::default()).unwrap_err();
        assert!(err.contains("thread counts"), "{err}");
        assert!(err.contains("--skip-runtime"), "{err}");
    }

    #[test]
    fn cross_thread_count_accuracy_comparison_works_with_skip_runtime() {
        let base = record_v3(1.0, 90.0, 1);
        let cur = record_v3(0.3, 90.0, 4);
        let tol = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(!regressed, "accuracy is identical:\n{report}");
        // ... and a real accuracy drop still fails across thread counts
        let bad = record_v3(0.3, 80.0, 4);
        let (_, regressed) = compare(&base, &bad, &tol).expect("valid");
        assert!(regressed, "accuracy drop must still gate");
    }

    #[test]
    fn same_thread_count_and_legacy_records_compare_runtimes() {
        let base = record_v3(1.0, 90.0, 4);
        let cur = record_v3(1.2, 90.0, 4);
        let (_, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(regressed, "same-thread runtime regression still gates");
        // a v2 baseline without `threads` never triggers the refusal
        let legacy = record(1.0, 90.0);
        let cur = record_v3(1.0, 90.0, 4);
        assert!(compare(&legacy, &cur, &Tolerance::default()).is_ok());
    }

    /// A v5 record with a `caches` block at the given hit/miss counts
    /// (both gated families share them).
    fn record_v5(acc: f64, hits: u64, misses: u64) -> String {
        record(1.0, acc)
            .replace("rhsd-bench-table/2", "rhsd-bench-table/5")
            .replace(
                "\"seed\": 103,",
                &format!(
                    "\"seed\": 103,\n  \"caches\": {{\
                     \"region_tile\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": 0, \"bytes\": 64}},\
                     \"stem_feature\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": 0, \"bytes\": 64}},\
                     \"aerial_dedup\": {{\"hits\": 0, \"misses\": 0, \"evictions\": 0, \"bytes\": 0}},\
                     \"workspace\": {{\"hits\": 9, \"misses\": 1, \"evictions\": 0, \"bytes\": 640}}}},"
                ),
            )
    }

    #[test]
    fn cache_hit_rate_gate_passes_and_fails() {
        let tol = Tolerance {
            min_cache_hit_rate_pct: Some(50.0),
            ..Tolerance::default()
        };
        // 3 hits / 1 miss = 75% ≥ 50% — passes.
        let good = record_v5(90.0, 3, 1);
        let (report, regressed) = compare(&good, &good, &tol).expect("valid");
        assert!(!regressed, "75% hit rate must pass a 50% floor:\n{report}");
        assert!(report.contains("hit rate"), "{report}");
        // 1 hit / 3 misses = 25% < 50% — fails.
        let bad = record_v5(90.0, 1, 3);
        let (report, regressed) = compare(&good, &bad, &tol).expect("valid");
        assert!(regressed, "25% hit rate must fail a 50% floor:\n{report}");
        assert!(report.contains("below the 50.0% floor"), "{report}");
        // The gate is opt-in: without the flag the same records pass.
        let (_, regressed) = compare(&good, &bad, &Tolerance::default()).expect("valid");
        assert!(!regressed, "cache gate must be opt-in");
    }

    #[test]
    fn cache_gate_refuses_records_without_gauges() {
        let tol = Tolerance {
            min_cache_hit_rate_pct: Some(50.0),
            ..Tolerance::default()
        };
        // Pre-v5 record: no caches block at all.
        let legacy = record(1.0, 90.0);
        let err = compare(&legacy, &legacy, &tol).unwrap_err();
        assert!(err.contains("no `caches.region_tile`"), "{err}");
        // v5 record with all-zero gauges (observability was off).
        let zeros = record_v5(90.0, 0, 0);
        let err = compare(&zeros, &zeros, &tol).unwrap_err();
        assert!(err.contains("all zero"), "{err}");
    }

    #[test]
    fn zero_accuracy_baseline_row_warns_loudly() {
        let base = record(1.0, 0.0);
        let cur = record(1.0, 0.0);
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(!regressed, "the warning is not a gate failure");
        assert!(report.contains("WARNING"), "{report}");
        assert!(report.contains("0% accuracy"), "{report}");
        // A healthy baseline does not warn.
        let healthy = record(1.0, 90.0);
        let (report, _) = compare(&healthy, &healthy, &Tolerance::default()).expect("valid");
        assert!(!report.contains("WARNING"), "{report}");
    }

    #[test]
    fn accuracy_floor_gate_catches_collapsed_models() {
        let tol = Tolerance {
            min_accuracy_pct: Some(10.0),
            ..Tolerance::default()
        };
        // Both records collapsed to 0%: the drop gate sees no change, but
        // the floor catches it anyway.
        let collapsed = record(1.0, 0.0);
        let (report, regressed) = compare(&collapsed, &collapsed, &tol).expect("valid");
        assert!(regressed, "0% accuracy must fail a 10% floor:\n{report}");
        assert!(report.contains("below the 10.0% floor"), "{report}");
        assert!(report.contains("collapsed during training"), "{report}");
        // A healthy record clears the floor.
        let healthy = record(1.0, 34.0);
        let (report, regressed) = compare(&healthy, &healthy, &tol).expect("valid");
        assert!(!regressed, "34% clears a 10% floor:\n{report}");
        // The gate only inspects the current record: a collapsed baseline
        // with a healthy current run passes.
        let (_, regressed) = compare(&collapsed, &healthy, &tol).expect("valid");
        assert!(!regressed, "floor gates the current record only");
        // ... and it is opt-in.
        let (_, regressed) = compare(&collapsed, &collapsed, &Tolerance::default()).expect("valid");
        assert!(!regressed, "floor gate must be opt-in");
    }

    /// A v7 record carrying `precision` and `isa` fields.
    fn record_v7(secs: f64, acc: f64, fa: u64, precision: &str) -> String {
        record(secs, acc)
            .replace("rhsd-bench-table/2", "rhsd-bench-table/7")
            .replace("\"false_alarms\": 4", &format!("\"false_alarms\": {fa}"))
            .replace(
                "\"seed\": 103,",
                &format!("\"seed\": 103,\n  \"precision\": \"{precision}\",\n  \"isa\": \"avx2\","),
            )
    }

    #[test]
    fn accuracy_delta_gate_is_symmetric_and_covers_false_alarms() {
        let tol = Tolerance {
            skip_runtime: true,
            max_accuracy_delta_pt: Some(0.5),
            ..Tolerance::default()
        };
        let base = record_v7(1.0, 90.0, 4, "f32");
        // Within the bound in both directions: passes.
        for cur in [
            record_v7(1.0, 90.4, 4, "int8"),
            record_v7(1.0, 89.6, 4, "int8"),
        ] {
            let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
            assert!(!regressed, "0.4pt drift clears a 0.5pt bound:\n{report}");
        }
        // An accuracy *gain* past the bound fails too (quantisation
        // artefact, not an improvement).
        let gain = record_v7(1.0, 91.0, 4, "int8");
        let (report, regressed) = compare(&base, &gain, &tol).expect("valid");
        assert!(regressed, "+1pt must fail a 0.5pt |delta| bound:\n{report}");
        assert!(report.contains("accuracy moved +1.00pt"), "{report}");
        // A false-alarm move past the bound fails independently.
        let fa = record_v7(1.0, 90.0, 6, "int8");
        let (report, regressed) = compare(&base, &fa, &tol).expect("valid");
        assert!(regressed, "+2 FA must fail a 0.5 |delta| bound:\n{report}");
        assert!(report.contains("false alarms moved +2"), "{report}");
        // The gate is opt-in.
        let no_gate = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (_, regressed) = compare(&base, &gain, &no_gate).expect("valid");
        assert!(!regressed, "delta gate must be opt-in");
    }

    #[test]
    fn cross_precision_runtime_comparison_is_refused() {
        let base = record_v7(1.0, 90.0, 4, "f32");
        let cur = record_v7(0.5, 90.0, 4, "int8");
        let err = compare(&base, &cur, &Tolerance::default()).unwrap_err();
        assert!(err.contains("different precisions"), "{err}");
        assert!(err.contains("--skip-runtime"), "{err}");
        // --skip-runtime compares the quality columns.
        let tol = Tolerance {
            skip_runtime: true,
            max_accuracy_delta_pt: Some(0.5),
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(!regressed, "{report}");
        assert!(report.contains("precision=f32"), "{report}");
        assert!(report.contains("precision=int8"), "{report}");
        // A pre-v7 record reads as f32: same-precision, no refusal.
        let legacy = record(1.0, 90.0);
        let f32_cur = record_v7(1.0, 90.0, 4, "f32");
        assert!(compare(&legacy, &f32_cur, &Tolerance::default()).is_ok());
    }

    #[test]
    fn min_accuracy_rejects_malformed_values() {
        assert!(num_arg(Some(&"10".to_owned()), "--min-accuracy").is_ok());
        assert!(num_arg(Some(&"abc".to_owned()), "--min-accuracy").is_err());
        assert!(num_arg(Some(&"-5".to_owned()), "--min-accuracy").is_err());
        assert!(num_arg(None, "--min-accuracy").is_err());
    }

    /// A minimal `rhsd-serve-bench/1` record with the given throughput,
    /// p99 latency and thread count.
    fn serve_record(rps: f64, p99_ms: f64, threads: u64) -> String {
        format!(
            r#"{{
  "schema": "rhsd-serve-bench/1",
  "source": "loadgen",
  "mode": "closed",
  "seed": 7,
  "threads": {threads},
  "connections": 4,
  "requests_per_connection": 8,
  "requests": 32,
  "wall_secs": 0.5,
  "rps": {rps},
  "p50_ms": 4.0,
  "p95_ms": 9.0,
  "p99_ms": {p99_ms},
  "batches": 10,
  "batched_requests": 32,
  "batched_regions": 128,
  "max_batch_requests": 4,
  "mean_batch_requests": 3.2,
  "tile_hit_rate": 75.0,
  "stem_hit_rate": 60.0,
  "bit_identity_checked": true,
  "bit_identity_mismatches": 0
}}"#
        )
    }

    #[test]
    fn identical_serve_records_pass() {
        let r = serve_record(120.0, 12.0, 4);
        let (report, regressed) = compare(&r, &r, &Tolerance::default()).expect("valid");
        assert!(!regressed, "identical serve records must pass:\n{report}");
        assert!(report.contains("requests/sec"), "{report}");
        assert!(report.contains("p99 latency"), "{report}");
    }

    #[test]
    fn serve_throughput_drop_fails() {
        let base = serve_record(120.0, 12.0, 4);
        let cur = serve_record(100.0, 12.0, 4); // -16.7% rps
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(
            regressed,
            "16.7% rps drop must fail the 10% gate:\n{report}"
        );
        assert!(report.contains("throughput dropped"), "{report}");
        // An rps *gain* never fails.
        let faster = serve_record(200.0, 12.0, 4);
        let (report, regressed) = compare(&base, &faster, &Tolerance::default()).expect("valid");
        assert!(!regressed, "faster serving is not a regression:\n{report}");
    }

    #[test]
    fn serve_p99_growth_fails() {
        let base = serve_record(120.0, 12.0, 4);
        let cur = serve_record(120.0, 15.0, 4); // +25% p99
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(
            regressed,
            "25% p99 growth must fail the 10% gate:\n{report}"
        );
        assert!(report.contains("p99 latency grew"), "{report}");
        // Small drift stays within tolerance.
        let drift = serve_record(115.0, 12.8, 4);
        let (report, regressed) = compare(&base, &drift, &Tolerance::default()).expect("valid");
        assert!(!regressed, "~5% drift is within tolerance:\n{report}");
    }

    #[test]
    fn serve_skip_runtime_is_informational_only() {
        let base = serve_record(120.0, 12.0, 4);
        let cur = serve_record(10.0, 120.0, 4);
        let tol = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(
            !regressed,
            "--skip-runtime must not gate serve columns:\n{report}"
        );
        assert!(report.contains("skipped"), "{report}");
    }

    #[test]
    fn serve_cross_thread_count_comparison_is_refused() {
        let base = serve_record(120.0, 12.0, 1);
        let cur = serve_record(300.0, 6.0, 4);
        let err = compare(&base, &cur, &Tolerance::default()).unwrap_err();
        assert!(err.contains("thread counts"), "{err}");
        assert!(err.contains("--skip-runtime"), "{err}");
        // ... but --skip-runtime still produces the informational report.
        let tol = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(!regressed, "{report}");
    }

    #[test]
    fn serve_cross_mode_comparison_is_refused() {
        let base = serve_record(120.0, 12.0, 4);
        let cur = base.replace("\"mode\": \"closed\"", "\"mode\": \"open\"");
        let err = compare(&base, &cur, &Tolerance::default()).unwrap_err();
        assert!(err.contains("load-generator modes"), "{err}");
    }

    #[test]
    fn serve_cross_precision_comparison_is_refused() {
        let base = serve_record(120.0, 12.0, 4);
        // A record predating the field reads as f32 against an explicit int8.
        let cur = base.replace(
            "\"mode\": \"closed\",",
            "\"mode\": \"closed\",\n  \"precision\": \"int8\",",
        );
        let err = compare(&base, &cur, &Tolerance::default()).unwrap_err();
        assert!(err.contains("different precisions"), "{err}");
        // --skip-runtime downgrades to an informational report.
        let tol = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(!regressed, "{report}");
    }

    #[test]
    fn serve_bit_identity_mismatch_always_fails() {
        let base = serve_record(120.0, 12.0, 4);
        let cur = base.replace(
            "\"bit_identity_mismatches\": 0",
            "\"bit_identity_mismatches\": 2",
        );
        // Even under --skip-runtime: correctness is not machine-dependent.
        let tol = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(regressed, "bit-identity mismatches must fail:\n{report}");
        assert!(report.contains("bit-identity"), "{report}");
    }

    #[test]
    fn serve_cache_floor_gates_current_rates() {
        let base = serve_record(120.0, 12.0, 4);
        // tile 75% / stem 60%: a 50% floor passes, a 70% floor fails on stem.
        let pass = Tolerance {
            min_cache_hit_rate_pct: Some(50.0),
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &base, &pass).expect("valid");
        assert!(!regressed, "{report}");
        let fail = Tolerance {
            min_cache_hit_rate_pct: Some(70.0),
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &base, &fail).expect("valid");
        assert!(regressed, "60% stem rate must fail a 70% floor:\n{report}");
        assert!(report.contains("stem_feature"), "{report}");
    }

    #[test]
    fn mixed_record_families_are_an_error() {
        let table = record(1.0, 90.0);
        let serve = serve_record(120.0, 12.0, 4);
        let err = compare(&table, &serve, &Tolerance::default()).unwrap_err();
        assert!(err.contains("mixed record families"), "{err}");
        let err = compare(&serve, &table, &Tolerance::default()).unwrap_err();
        assert!(err.contains("mixed record families"), "{err}");
        // --min-accuracy has no meaning for serve records.
        let tol = Tolerance {
            min_accuracy_pct: Some(10.0),
            ..Tolerance::default()
        };
        let err = compare(&serve, &serve, &tol).unwrap_err();
        assert!(err.contains("table records only"), "{err}");
    }

    #[test]
    fn malformed_serve_record_is_an_error() {
        let good = serve_record(120.0, 12.0, 4);
        let no_rps = good.replace("\"rps\"", "\"req_s\"");
        let err = compare(&no_rps, &good, &Tolerance::default()).unwrap_err();
        assert!(err.contains("missing numeric `rps`"), "{err}");
        // A zero-throughput baseline is a misconfigured gate, not a pass.
        let dead = serve_record(0.0, 0.0, 4);
        let err = compare(&dead, &good, &Tolerance::default()).unwrap_err();
        assert!(err.contains("no usable throughput"), "{err}");
    }

    #[test]
    fn missing_detector_is_a_note_not_a_failure() {
        let base = record(1.0, 90.0);
        let cur = base.replace("\"Ours\"", "\"Renamed\"");
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(!regressed);
        assert!(report.contains("missing from current record"));
        assert!(report.contains("new in current record"));
    }
}
