//! `cargo xtask bench-diff`: the benchmark regression gate.
//!
//! Compares two machine-readable benchmark records (the
//! `BENCH_table1.json` files written by `repro_table1 --bench-out`,
//! schema `rhsd-bench-table/3` — older schemas without `seed` /
//! `stage_secs` / `threads` are accepted too) and fails when the current
//! run regresses past the tolerances:
//!
//! - **runtime**: any detector's average scan time grew by more than
//!   `--max-runtime-regress` percent (default 10). Runtime is
//!   machine-dependent, so CI diffs against a committed baseline pass
//!   `--skip-runtime` and gate on the deterministic columns only.
//! - **accuracy**: any detector's average accuracy dropped by more than
//!   `--max-accuracy-drop` points (default 0.5).
//! - **false alarms**: informational — printed in the table but never
//!   fails the gate on its own (FA changes surface as accuracy changes
//!   in this pipeline).
//! - **cache efficiency** (opt-in): `--min-cache-hit-rate <pct>` gates
//!   the current record's `caches` block (schema v5): the
//!   thread-count-invariant `region_tile` and `stem_feature` families
//!   must each show a hit rate of at least `<pct>` percent. A record
//!   whose gauges are all zero (produced without observability) is
//!   refused — opting into the gate without data is a misconfiguration.
//!
//! - **accuracy floor** (opt-in): `--min-accuracy <pct>` fails the gate
//!   when any detector in the *current* record averages below `<pct>`
//!   percent accuracy. This turns the 0%-accuracy loud warning into an
//!   enforceable check: a silently collapsed model (the PR-6 failure
//!   mode) cannot pass CI even when the baseline collapsed too.
//!
//! A baseline detector row with 0% accuracy triggers a loud warning:
//! the accuracy gate cannot see regressions against a floor of zero, so
//! such baselines should be refreshed with a longer training schedule.
//!
//! Records produced at different `--threads` counts are **refused** for
//! runtime comparison (exit 2): parallel speedup would masquerade as a
//! runtime improvement or regression. Pass `--skip-runtime` to compare
//! the deterministic accuracy/FA columns across thread counts — those are
//! bit-identical at any thread count by design. Records predating the
//! `threads` field compare as before.
//!
//! Exit codes: 0 clean, 1 regression, 2 malformed input / usage error.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rhsd_obs::json::{parse, Value};

/// Comparison tolerances (percentages / accuracy points).
pub struct Tolerance {
    /// Maximum allowed runtime growth, in percent of the baseline.
    pub max_runtime_regress_pct: f64,
    /// Maximum allowed accuracy drop, in percentage points.
    pub max_accuracy_drop_pt: f64,
    /// Ignore the runtime column entirely (cross-machine CI gates).
    pub skip_runtime: bool,
    /// Minimum hit rate (percent) required of the current record's
    /// deterministic cache families; `None` disables the gate.
    pub min_cache_hit_rate_pct: Option<f64>,
    /// Absolute accuracy floor (percent) every detector in the current
    /// record must clear; `None` disables the gate.
    pub min_accuracy_pct: Option<f64>,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            max_runtime_regress_pct: 10.0,
            max_accuracy_drop_pt: 0.5,
            skip_runtime: false,
            min_cache_hit_rate_pct: None,
            min_accuracy_pct: None,
        }
    }
}

/// The cache families gated by `--min-cache-hit-rate`: their hit/miss
/// counts are thread-count invariant (unlike `workspace`, whose pools
/// warm per worker, or `aerial_dedup`, which is labelling-phase only).
const GATED_CACHES: [&str; 2] = ["region_tile", "stem_feature"];

/// One detector row extracted from a bench record.
#[derive(Debug, Clone, PartialEq)]
struct DetectorRow {
    name: String,
    accuracy_pct: f64,
    false_alarms: u64,
    seconds: f64,
}

/// A parsed bench record: source tag and per-detector average rows.
#[derive(Debug, Clone)]
struct BenchRecord {
    source: String,
    quick: bool,
    /// `rhsd-par` worker-thread count of the run (`None` on records
    /// predating schema v3).
    threads: Option<u64>,
    /// `(family, hits, misses)` from the `caches` block (empty on
    /// records predating schema v5).
    caches: Vec<(String, u64, u64)>,
    detectors: Vec<DetectorRow>,
}

fn row_from(name: &str, v: &Value) -> Result<DetectorRow, String> {
    let num = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("detector `{name}`: average row missing numeric `{key}`"))
    };
    Ok(DetectorRow {
        name: name.to_owned(),
        accuracy_pct: num("accuracy_pct")?,
        false_alarms: v.get("false_alarms").and_then(Value::as_u64).unwrap_or(0),
        seconds: num("seconds")?,
    })
}

/// Parses a bench record, checking the schema tag and extracting each
/// detector's average row.
fn parse_record(text: &str, label: &str) -> Result<BenchRecord, String> {
    let v = parse(text).map_err(|pos| format!("{label}: invalid JSON at byte {pos}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{label}: missing `schema` field"))?;
    if !schema.starts_with("rhsd-bench-table/") {
        return Err(format!("{label}: unsupported schema `{schema}`"));
    }
    let detectors = v
        .get("detectors")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{label}: missing `detectors` array"))?;
    let mut rows = Vec::new();
    for d in detectors {
        let name = d
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{label}: detector entry missing `name`"))?;
        let avg = d
            .get("average")
            .ok_or_else(|| format!("{label}: detector `{name}` missing `average` row"))?;
        rows.push(row_from(name, avg).map_err(|e| format!("{label}: {e}"))?);
    }
    if rows.is_empty() {
        return Err(format!("{label}: no detectors in record"));
    }
    let mut caches = Vec::new();
    if let Some(Value::Obj(families)) = v.get("caches") {
        for (family, gauges) in families {
            let g = |key: &str| gauges.get(key).and_then(Value::as_u64).unwrap_or(0);
            caches.push((family.clone(), g("hits"), g("misses")));
        }
    }
    Ok(BenchRecord {
        source: v
            .get("source")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned(),
        quick: v.get("quick").and_then(Value::as_bool).unwrap_or(false),
        threads: v.get("threads").and_then(Value::as_u64),
        caches,
        detectors: rows,
    })
}

/// One detector's comparison outcome.
#[derive(Debug)]
struct RowDiff {
    name: String,
    accuracy_delta_pt: f64,
    fa_delta: i64,
    runtime_delta_pct: Option<f64>,
    regressions: Vec<String>,
}

/// Compares `current` against `baseline` under `tol`. Detectors present
/// in only one record are reported but never fail the gate.
fn diff(
    baseline: &BenchRecord,
    current: &BenchRecord,
    tol: &Tolerance,
) -> (Vec<RowDiff>, Vec<String>) {
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for b in &baseline.detectors {
        let Some(c) = current.detectors.iter().find(|c| c.name == b.name) else {
            notes.push(format!("detector `{}` missing from current record", b.name));
            continue;
        };
        let accuracy_delta_pt = c.accuracy_pct - b.accuracy_pct;
        let fa_delta = c.false_alarms as i64 - b.false_alarms as i64;
        let runtime_delta_pct = (!tol.skip_runtime && b.seconds > 0.0)
            .then(|| 100.0 * (c.seconds - b.seconds) / b.seconds);
        let mut regressions = Vec::new();
        if accuracy_delta_pt < -tol.max_accuracy_drop_pt {
            regressions.push(format!(
                "accuracy dropped {:.2}pt (tolerance {:.2}pt)",
                -accuracy_delta_pt, tol.max_accuracy_drop_pt
            ));
        }
        if let Some(rt) = runtime_delta_pct {
            if rt > tol.max_runtime_regress_pct {
                regressions.push(format!(
                    "runtime grew {:.1}% (tolerance {:.1}%)",
                    rt, tol.max_runtime_regress_pct
                ));
            }
        }
        rows.push(RowDiff {
            name: b.name.clone(),
            accuracy_delta_pt,
            fa_delta,
            runtime_delta_pct,
            regressions,
        });
    }
    for c in &current.detectors {
        if !baseline.detectors.iter().any(|b| b.name == c.name) {
            notes.push(format!("detector `{}` new in current record", c.name));
        }
    }
    for b in &baseline.detectors {
        if b.accuracy_pct == 0.0 {
            notes.push(format!(
                "WARNING: baseline detector `{}` reports 0% accuracy — the \
                 accuracy gate cannot see regressions against a floor of \
                 zero; refresh the baseline with a longer training schedule",
                b.name
            ));
        }
    }
    (rows, notes)
}

/// Applies the opt-in `--min-cache-hit-rate` gate to the current
/// record's deterministic cache families. Returns the per-family report
/// lines and any failures; `Err` when the gate was requested but the
/// record carries no usable gauges.
fn check_cache_hit_rates(
    current: &BenchRecord,
    min_pct: f64,
) -> Result<(Vec<String>, Vec<String>), String> {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for family in GATED_CACHES {
        let Some((_, hits, misses)) = current.caches.iter().find(|(f, _, _)| f == family) else {
            return Err(format!(
                "--min-cache-hit-rate: current record has no `caches.{family}` \
                 gauges (schema v5 record required)"
            ));
        };
        let total = hits + misses;
        if total == 0 {
            return Err(format!(
                "--min-cache-hit-rate: `caches.{family}` gauges are all zero — \
                 the record was produced without observability enabled \
                 (rerun with a ledger/trace/profile export active)"
            ));
        }
        let rate = 100.0 * *hits as f64 / total as f64;
        lines.push(format!(
            "cache {family:<13} {hits:>8} hits {misses:>8} misses  {rate:6.1}% hit rate"
        ));
        if rate < min_pct {
            failures.push(format!(
                "cache `{family}` hit rate {rate:.1}% below the {min_pct:.1}% floor"
            ));
        }
    }
    Ok((lines, failures))
}

/// Renders the human-readable comparison table.
fn render(
    baseline: &BenchRecord,
    current: &BenchRecord,
    rows: &[RowDiff],
    notes: &[String],
) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "bench-diff: {} (quick={}) vs {} (quick={})",
        baseline.source, baseline.quick, current.source, current.quick
    );
    let _ = writeln!(
        o,
        "{:<14} {:>12} {:>8} {:>12}  status",
        "detector", "Δacc(pt)", "ΔFA", "Δruntime"
    );
    for r in rows {
        let rt = match r.runtime_delta_pct {
            Some(pct) => format!("{pct:+.1}%"),
            None => "skipped".to_owned(),
        };
        let status = if r.regressions.is_empty() {
            "ok".to_owned()
        } else {
            format!("REGRESSION: {}", r.regressions.join("; "))
        };
        let _ = writeln!(
            o,
            "{:<14} {:>12} {:>8} {:>12}  {}",
            r.name,
            format!("{:+.2}", r.accuracy_delta_pt),
            format!("{:+}", r.fa_delta),
            rt,
            status
        );
    }
    for n in notes {
        let _ = writeln!(o, "note: {n}");
    }
    o
}

/// Pure core of the gate: compares two record texts, returning the
/// rendered report and whether any detector regressed. `Err` means a
/// record was malformed.
pub fn compare(
    baseline_text: &str,
    current_text: &str,
    tol: &Tolerance,
) -> Result<(String, bool), String> {
    let baseline = parse_record(baseline_text, "baseline")?;
    let current = parse_record(current_text, "current")?;
    if let (Some(b), Some(c)) = (baseline.threads, current.threads) {
        if b != c && !tol.skip_runtime {
            return Err(format!(
                "records were produced at different thread counts \
                 (baseline {b}, current {c}); runtimes are not comparable — \
                 pass --skip-runtime to gate on the thread-count-invariant \
                 accuracy columns only"
            ));
        }
    }
    let (rows, notes) = diff(&baseline, &current, tol);
    let mut regressed = rows.iter().any(|r| !r.regressions.is_empty());
    let mut report = render(&baseline, &current, &rows, &notes);
    if let Some(floor) = tol.min_accuracy_pct {
        for d in &current.detectors {
            if d.accuracy_pct < floor {
                report.push_str(&format!(
                    "REGRESSION: detector `{}` averages {:.2}% accuracy, below \
                     the {floor:.1}% floor — the model likely collapsed during \
                     training (check the run ledger's sentinel events)\n",
                    d.name, d.accuracy_pct
                ));
                regressed = true;
            }
        }
    }
    if let Some(min_pct) = tol.min_cache_hit_rate_pct {
        let (lines, failures) = check_cache_hit_rates(&current, min_pct)?;
        for line in lines {
            report.push_str(&line);
            report.push('\n');
        }
        for f in failures {
            report.push_str(&format!("REGRESSION: {f}\n"));
            regressed = true;
        }
    }
    Ok((report, regressed))
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// CLI entry point: `cargo xtask bench-diff <baseline.json> <current.json>
/// [--max-runtime-regress <pct>] [--max-accuracy-drop <pt>]
/// [--skip-runtime] [--min-cache-hit-rate <pct>] [--min-accuracy <pct>]`.
pub fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tol = Tolerance::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-runtime-regress" => {
                tol.max_runtime_regress_pct = num_arg(it.next(), "--max-runtime-regress")?;
            }
            "--max-accuracy-drop" => {
                tol.max_accuracy_drop_pt = num_arg(it.next(), "--max-accuracy-drop")?;
            }
            "--skip-runtime" => tol.skip_runtime = true,
            "--min-cache-hit-rate" => {
                tol.min_cache_hit_rate_pct = Some(num_arg(it.next(), "--min-cache-hit-rate")?);
            }
            "--min-accuracy" => {
                tol.min_accuracy_pct = Some(num_arg(it.next(), "--min-accuracy")?);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown bench-diff option `{other}`"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(
            "bench-diff needs exactly two record paths: <baseline.json> <current.json>".into(),
        );
    };
    let (report, regressed) = compare(&read(baseline)?, &read(current)?, &tol)
        .map_err(|e| format!("malformed record: {e}"))?;
    print!("{report}");
    Ok(if regressed {
        println!("bench-diff: FAIL (regression past tolerance)");
        ExitCode::FAILURE
    } else {
        println!("bench-diff: ok");
        ExitCode::SUCCESS
    })
}

fn num_arg(v: Option<&String>, flag: &str) -> Result<f64, String> {
    let v = v.ok_or_else(|| format!("{flag} needs a number"))?;
    let n: f64 = v
        .parse()
        .map_err(|_| format!("{flag}: `{v}` is not a number"))?;
    if n.is_finite() && n >= 0.0 {
        Ok(n)
    } else {
        Err(format!(
            "{flag}: `{v}` must be a finite non-negative number"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal valid v2 record (no `threads` field) with one detector
    /// whose average row has the given runtime and accuracy.
    fn record(secs: f64, acc: f64) -> String {
        format!(
            r#"{{
  "schema": "rhsd-bench-table/2",
  "source": "repro_table1",
  "quick": true,
  "seed": 103,
  "stage_secs": {{"eval.region_scan": {secs}}},
  "detectors": [
    {{
      "name": "Ours",
      "cases": [
        {{"case": "Case2", "accuracy_pct": {acc}, "false_alarms": 4, "seconds": {secs}}}
      ],
      "average": {{"case": "Average", "accuracy_pct": {acc}, "false_alarms": 4, "seconds": {secs}}}
    }}
  ]
}}"#
        )
    }

    /// A v3 record carrying a `threads` field.
    fn record_v3(secs: f64, acc: f64, threads: u64) -> String {
        record(secs, acc)
            .replace("rhsd-bench-table/2", "rhsd-bench-table/3")
            .replace(
                "\"seed\": 103,",
                &format!("\"seed\": 103,\n  \"threads\": {threads},"),
            )
    }

    #[test]
    fn identical_records_pass() {
        let r = record(1.0, 90.0);
        let (report, regressed) = compare(&r, &r, &Tolerance::default()).expect("valid");
        assert!(!regressed, "identical records must not regress:\n{report}");
        assert!(report.contains("Ours"));
    }

    #[test]
    fn twenty_percent_runtime_regression_fails() {
        let base = record(1.0, 90.0);
        let cur = record(1.2, 90.0);
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(regressed, "1.2x runtime must fail the 10% gate:\n{report}");
        assert!(report.contains("runtime grew"));
    }

    #[test]
    fn runtime_regression_is_ignored_with_skip_runtime() {
        let base = record(1.0, 90.0);
        let cur = record(10.0, 90.0);
        let tol = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(!regressed, "--skip-runtime must ignore runtime:\n{report}");
        assert!(report.contains("skipped"));
    }

    #[test]
    fn accuracy_drop_fails() {
        let base = record(1.0, 90.0);
        let cur = record(1.0, 89.0);
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(
            regressed,
            "1pt accuracy drop must fail the 0.5pt gate:\n{report}"
        );
        assert!(report.contains("accuracy dropped"));
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = record(1.0, 90.0);
        let cur = record(1.05, 89.8);
        let (_, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(
            !regressed,
            "5% runtime / 0.2pt accuracy drift is within tolerance"
        );
    }

    #[test]
    fn malformed_input_is_an_error() {
        let good = record(1.0, 90.0);
        assert!(compare("not json", &good, &Tolerance::default()).is_err());
        assert!(compare(
            &good,
            "{\"schema\": \"rhsd-bench-table/2\"}",
            &Tolerance::default()
        )
        .is_err());
        let wrong_schema = good.replace("rhsd-bench-table/2", "other/1");
        assert!(compare(&wrong_schema, &good, &Tolerance::default()).is_err());
        let no_avg = good.replace("\"average\"", "\"avg\"");
        assert!(compare(&good, &no_avg, &Tolerance::default()).is_err());
    }

    #[test]
    fn cross_thread_count_runtime_comparison_is_refused() {
        let base = record_v3(1.0, 90.0, 1);
        let cur = record_v3(0.3, 90.0, 4);
        let err = compare(&base, &cur, &Tolerance::default()).unwrap_err();
        assert!(err.contains("thread counts"), "{err}");
        assert!(err.contains("--skip-runtime"), "{err}");
    }

    #[test]
    fn cross_thread_count_accuracy_comparison_works_with_skip_runtime() {
        let base = record_v3(1.0, 90.0, 1);
        let cur = record_v3(0.3, 90.0, 4);
        let tol = Tolerance {
            skip_runtime: true,
            ..Tolerance::default()
        };
        let (report, regressed) = compare(&base, &cur, &tol).expect("valid");
        assert!(!regressed, "accuracy is identical:\n{report}");
        // ... and a real accuracy drop still fails across thread counts
        let bad = record_v3(0.3, 80.0, 4);
        let (_, regressed) = compare(&base, &bad, &tol).expect("valid");
        assert!(regressed, "accuracy drop must still gate");
    }

    #[test]
    fn same_thread_count_and_legacy_records_compare_runtimes() {
        let base = record_v3(1.0, 90.0, 4);
        let cur = record_v3(1.2, 90.0, 4);
        let (_, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(regressed, "same-thread runtime regression still gates");
        // a v2 baseline without `threads` never triggers the refusal
        let legacy = record(1.0, 90.0);
        let cur = record_v3(1.0, 90.0, 4);
        assert!(compare(&legacy, &cur, &Tolerance::default()).is_ok());
    }

    /// A v5 record with a `caches` block at the given hit/miss counts
    /// (both gated families share them).
    fn record_v5(acc: f64, hits: u64, misses: u64) -> String {
        record(1.0, acc)
            .replace("rhsd-bench-table/2", "rhsd-bench-table/5")
            .replace(
                "\"seed\": 103,",
                &format!(
                    "\"seed\": 103,\n  \"caches\": {{\
                     \"region_tile\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": 0, \"bytes\": 64}},\
                     \"stem_feature\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": 0, \"bytes\": 64}},\
                     \"aerial_dedup\": {{\"hits\": 0, \"misses\": 0, \"evictions\": 0, \"bytes\": 0}},\
                     \"workspace\": {{\"hits\": 9, \"misses\": 1, \"evictions\": 0, \"bytes\": 640}}}},"
                ),
            )
    }

    #[test]
    fn cache_hit_rate_gate_passes_and_fails() {
        let tol = Tolerance {
            min_cache_hit_rate_pct: Some(50.0),
            ..Tolerance::default()
        };
        // 3 hits / 1 miss = 75% ≥ 50% — passes.
        let good = record_v5(90.0, 3, 1);
        let (report, regressed) = compare(&good, &good, &tol).expect("valid");
        assert!(!regressed, "75% hit rate must pass a 50% floor:\n{report}");
        assert!(report.contains("hit rate"), "{report}");
        // 1 hit / 3 misses = 25% < 50% — fails.
        let bad = record_v5(90.0, 1, 3);
        let (report, regressed) = compare(&good, &bad, &tol).expect("valid");
        assert!(regressed, "25% hit rate must fail a 50% floor:\n{report}");
        assert!(report.contains("below the 50.0% floor"), "{report}");
        // The gate is opt-in: without the flag the same records pass.
        let (_, regressed) = compare(&good, &bad, &Tolerance::default()).expect("valid");
        assert!(!regressed, "cache gate must be opt-in");
    }

    #[test]
    fn cache_gate_refuses_records_without_gauges() {
        let tol = Tolerance {
            min_cache_hit_rate_pct: Some(50.0),
            ..Tolerance::default()
        };
        // Pre-v5 record: no caches block at all.
        let legacy = record(1.0, 90.0);
        let err = compare(&legacy, &legacy, &tol).unwrap_err();
        assert!(err.contains("no `caches.region_tile`"), "{err}");
        // v5 record with all-zero gauges (observability was off).
        let zeros = record_v5(90.0, 0, 0);
        let err = compare(&zeros, &zeros, &tol).unwrap_err();
        assert!(err.contains("all zero"), "{err}");
    }

    #[test]
    fn zero_accuracy_baseline_row_warns_loudly() {
        let base = record(1.0, 0.0);
        let cur = record(1.0, 0.0);
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(!regressed, "the warning is not a gate failure");
        assert!(report.contains("WARNING"), "{report}");
        assert!(report.contains("0% accuracy"), "{report}");
        // A healthy baseline does not warn.
        let healthy = record(1.0, 90.0);
        let (report, _) = compare(&healthy, &healthy, &Tolerance::default()).expect("valid");
        assert!(!report.contains("WARNING"), "{report}");
    }

    #[test]
    fn accuracy_floor_gate_catches_collapsed_models() {
        let tol = Tolerance {
            min_accuracy_pct: Some(10.0),
            ..Tolerance::default()
        };
        // Both records collapsed to 0%: the drop gate sees no change, but
        // the floor catches it anyway.
        let collapsed = record(1.0, 0.0);
        let (report, regressed) = compare(&collapsed, &collapsed, &tol).expect("valid");
        assert!(regressed, "0% accuracy must fail a 10% floor:\n{report}");
        assert!(report.contains("below the 10.0% floor"), "{report}");
        assert!(report.contains("collapsed during training"), "{report}");
        // A healthy record clears the floor.
        let healthy = record(1.0, 34.0);
        let (report, regressed) = compare(&healthy, &healthy, &tol).expect("valid");
        assert!(!regressed, "34% clears a 10% floor:\n{report}");
        // The gate only inspects the current record: a collapsed baseline
        // with a healthy current run passes.
        let (_, regressed) = compare(&collapsed, &healthy, &tol).expect("valid");
        assert!(!regressed, "floor gates the current record only");
        // ... and it is opt-in.
        let (_, regressed) = compare(&collapsed, &collapsed, &Tolerance::default()).expect("valid");
        assert!(!regressed, "floor gate must be opt-in");
    }

    #[test]
    fn min_accuracy_rejects_malformed_values() {
        assert!(num_arg(Some(&"10".to_owned()), "--min-accuracy").is_ok());
        assert!(num_arg(Some(&"abc".to_owned()), "--min-accuracy").is_err());
        assert!(num_arg(Some(&"-5".to_owned()), "--min-accuracy").is_err());
        assert!(num_arg(None, "--min-accuracy").is_err());
    }

    #[test]
    fn missing_detector_is_a_note_not_a_failure() {
        let base = record(1.0, 90.0);
        let cur = base.replace("\"Ours\"", "\"Renamed\"");
        let (report, regressed) = compare(&base, &cur, &Tolerance::default()).expect("valid");
        assert!(!regressed);
        assert!(report.contains("missing from current record"));
        assert!(report.contains("new in current record"));
    }
}
