//! `cargo xtask loadgen` — a deterministic load generator for
//! `rhsd-serve`.
//!
//! Opens N connections, issues M scan requests per connection (cases
//! chosen by a fixed seed, so two runs against equivalent servers issue
//! the identical request stream), measures per-request latency, fetches
//! the server's counters, and writes a `rhsd-serve-bench/1` JSON record
//! (requests/sec, p50/p95/p99 latency, batch occupancy, cache hit
//! rates) that `cargo xtask bench-diff` can gate on.
//!
//! Two traffic shapes:
//! - **closed-loop** (default): each connection waits for a reply
//!   before sending the next request — latency under no queueing.
//! - **open-loop**: each connection writes its whole request stream
//!   immediately and then drains replies — maximises the batch
//!   coalescing opportunity on the server.
//!
//! With `--expect <Case>=<file>` every reply for that case is compared
//! byte-for-byte against the reference file (written by
//! `rhsd-serve --offline-scan`), turning the load test into the
//! bit-identity check the CI serve-smoke leg relies on.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rhsd_layout::synth::CaseId;
use rhsd_obs::json::{self, Value};
use rhsd_serve::proto::{case_from_name, read_frame, request_json, write_frame, Half, Request};
use rhsd_serve::Client;

/// Schema tag of the emitted record.
pub const SCHEMA: &str = "rhsd-serve-bench/1";

struct Options {
    addr: String,
    connections: usize,
    requests: usize,
    mode: Mode,
    seed: u64,
    cases: Vec<CaseId>,
    expect: Vec<(CaseId, PathBuf)>,
    out: PathBuf,
    shutdown: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open => "open",
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut connections = 4usize;
    let mut requests = 8usize;
    let mut mode = Mode::Closed;
    let mut seed = 7u64;
    let mut cases = vec![CaseId::Case2, CaseId::Case3];
    let mut expect = Vec::new();
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut shutdown = false;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--connections" => {
                connections = value("--connections")?
                    .parse()
                    .map_err(|_| "--connections needs a positive integer".to_owned())?;
            }
            "--requests" => {
                requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests needs a positive integer".to_owned())?;
            }
            "--mode" => {
                mode = match value("--mode")?.as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_owned())?;
            }
            "--case" => {
                cases = value("--case")?
                    .split(',')
                    .map(case_from_name)
                    .collect::<Result<_, _>>()?;
            }
            "--expect" => {
                let spec = value("--expect")?;
                let (case, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--expect wants <Case>=<file>, got `{spec}`"))?;
                expect.push((case_from_name(case)?, PathBuf::from(path)));
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--shutdown" => shutdown = true,
            "--quick" => quick = true,
            other => return Err(format!("unknown loadgen option `{other}`")),
        }
    }
    if quick {
        // Small but still concurrent: enough traffic to exercise
        // coalescing and warm caches inside a CI smoke budget.
        connections = 2;
        requests = 3;
        cases = vec![CaseId::Case2];
    }
    if connections == 0 || requests == 0 {
        return Err("--connections and --requests must be at least 1".into());
    }
    if cases.is_empty() {
        return Err("--case list must not be empty".into());
    }
    Ok(Options {
        addr,
        connections,
        requests,
        mode,
        seed,
        cases,
        expect,
        out,
        shutdown,
    })
}

/// The deterministic case for request `i` of connection `conn`.
fn pick_case(opts: &Options, conn: usize, i: usize) -> CaseId {
    let idx = (opts.seed as usize)
        .wrapping_add(conn * opts.requests)
        .wrapping_add(i)
        % opts.cases.len();
    opts.cases[idx]
}

/// One connection's completed requests: `(case, latency_ms, reply body)`
/// in request order.
type ConnRows = Vec<(CaseId, f64, String)>;

/// One connection's worth of traffic; returns per-request latencies in
/// milliseconds (request order) and the reply bodies.
fn drive_connection(opts: &Options, conn: usize) -> Result<ConnRows, String> {
    let fail = |e: &dyn std::fmt::Display| format!("connection {conn}: {e}");
    match opts.mode {
        Mode::Closed => {
            let mut client = Client::connect(&*opts.addr).map_err(|e| fail(&e))?;
            let mut out = Vec::with_capacity(opts.requests);
            for i in 0..opts.requests {
                let case = pick_case(opts, conn, i);
                let t = Instant::now();
                let body = client.scan(case, Half::Test).map_err(|e| fail(&e))?;
                out.push((case, t.elapsed().as_secs_f64() * 1e3, body));
            }
            Ok(out)
        }
        Mode::Open => {
            let stream = TcpStream::connect(&*opts.addr).map_err(|e| fail(&e))?;
            stream.set_nodelay(true).map_err(|e| fail(&e))?;
            let mut reader = BufReader::new(stream.try_clone().map_err(|e| fail(&e))?);
            let mut writer = BufWriter::new(stream);
            let mut sent = Vec::with_capacity(opts.requests);
            for i in 0..opts.requests {
                let case = pick_case(opts, conn, i);
                let req = request_json(&Request::Scan {
                    case,
                    half: Half::Test,
                });
                write_frame(&mut writer, &req).map_err(|e| fail(&e))?;
                sent.push((case, Instant::now()));
            }
            let mut out = Vec::with_capacity(opts.requests);
            for (case, t) in sent {
                let body = read_frame(&mut reader)
                    .map_err(|e| fail(&e))?
                    .ok_or_else(|| fail(&"server closed mid-stream"))?;
                out.push((case, t.elapsed().as_secs_f64() * 1e3, body));
            }
            Ok(out)
        }
    }
}

/// Nearest-rank percentile over an (unsorted) latency list.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn hit_rate(hits: f64, misses: f64) -> f64 {
    if hits + misses > 0.0 {
        100.0 * hits / (hits + misses)
    } else {
        0.0
    }
}

/// Runs the load generator. Returns `Err` for usage errors (exit 2);
/// runtime failures (unreachable server, bit-identity mismatch) exit 1.
pub fn run(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_options(args)?;
    let references: Vec<(CaseId, String)> = opts
        .expect
        .iter()
        .map(|(case, path)| {
            std::fs::read_to_string(path)
                .map(|body| (*case, body))
                .map_err(|e| format!("cannot read reference {}: {e}", path.display()))
        })
        .collect::<Result<_, _>>()?;

    eprintln!(
        "loadgen: {} connections x {} requests ({}-loop, seed {}) -> {}",
        opts.connections,
        opts.requests,
        opts.mode.name(),
        opts.seed,
        opts.addr
    );

    let wall = Instant::now();
    let results: Vec<Result<ConnRows, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.connections)
            .map(|conn| {
                let opts = &opts;
                scope.spawn(move || drive_connection(opts, conn))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("connection thread panicked".into()))
            })
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut mismatches = 0usize;
    for result in &results {
        let rows = match result {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("loadgen: {e}");
                return Ok(ExitCode::FAILURE);
            }
        };
        for (case, ms, body) in rows {
            latencies.push(*ms);
            if let Some((_, expected)) = references.iter().find(|(c, _)| c == case) {
                if body != expected {
                    mismatches += 1;
                    eprintln!(
                        "loadgen: BIT-IDENTITY VIOLATION: served {case} reply ({} bytes) \
                         differs from offline reference ({} bytes)",
                        body.len(),
                        expected.len()
                    );
                }
            }
        }
    }
    let total = latencies.len();

    // Server-side counters (occupancy, cache rates, thread count).
    let mut control =
        Client::connect(&*opts.addr).map_err(|e| format!("cannot reconnect for stats: {e}"))?;
    let stats_body = control
        .stats()
        .map_err(|e| format!("stats request failed: {e}"))?;
    let stats = json::parse(&stats_body)
        .map_err(|at| format!("stats reply is not JSON (at byte {at}): {stats_body}"))?;
    let stat = |k: &str| stats.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    // Strings the server reports about itself: scan precision and the
    // SIMD ISA its kernel dispatcher selected. Ride along in the record
    // so bench-diff can refuse apples-to-oranges runtime comparisons.
    let stat_str = |k: &str| {
        stats
            .get(k)
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned()
    };
    let precision = {
        let p = stat_str("precision");
        if p.is_empty() {
            "f32".to_owned()
        } else {
            p
        }
    };
    let isa = stat_str("isa");
    if opts.shutdown {
        control
            .shutdown()
            .map_err(|e| format!("shutdown request failed: {e}"))?;
    }
    drop(control);

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rps = if wall_secs > 0.0 {
        total as f64 / wall_secs
    } else {
        0.0
    };
    let batches = stat("batches");
    let mean_batch = if batches > 0.0 {
        stat("batched_requests") / batches
    } else {
        0.0
    };
    let record = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"source\": \"loadgen\",\n  \"mode\": \"{mode}\",\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \"precision\": \"{precision}\",\n  \"isa\": \"{isa}\",\n  \"connections\": {connections},\n  \"requests_per_connection\": {rpc},\n  \"requests\": {total},\n  \"wall_secs\": {wall},\n  \"rps\": {rps},\n  \"p50_ms\": {p50},\n  \"p95_ms\": {p95},\n  \"p99_ms\": {p99},\n  \"batches\": {batches},\n  \"batched_requests\": {breq},\n  \"batched_regions\": {breg},\n  \"max_batch_requests\": {bmax},\n  \"mean_batch_requests\": {bmean},\n  \"tile_hit_rate\": {tile},\n  \"stem_hit_rate\": {stem},\n  \"bit_identity_checked\": {checked},\n  \"bit_identity_mismatches\": {mismatches}\n}}\n",
        mode = opts.mode.name(),
        seed = opts.seed,
        threads = stat("threads"),
        precision = precision,
        isa = isa,
        connections = opts.connections,
        rpc = opts.requests,
        wall = json::number(wall_secs),
        rps = json::number(rps),
        p50 = json::number(percentile(&latencies, 50.0)),
        p95 = json::number(percentile(&latencies, 95.0)),
        p99 = json::number(percentile(&latencies, 99.0)),
        batches = stat("batches"),
        breq = stat("batched_requests"),
        breg = stat("batched_regions"),
        bmax = stat("max_batch_requests"),
        bmean = json::number(mean_batch),
        tile = json::number(hit_rate(stat("tile_hits"), stat("tile_misses"))),
        stem = json::number(hit_rate(stat("stem_hits"), stat("stem_misses"))),
        checked = !references.is_empty(),
    );
    std::fs::write(&opts.out, &record)
        .map_err(|e| format!("cannot write {}: {e}", opts.out.display()))?;

    eprintln!(
        "loadgen: {total} requests in {wall_secs:.2}s ({rps:.1} req/s), p50 {:.1}ms p99 {:.1}ms, \
         {batches} batches (mean {mean_batch:.1} req/batch); record -> {}",
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
        opts.out.display()
    );
    if mismatches > 0 {
        eprintln!("loadgen: {mismatches} bit-identity mismatches");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_options(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_quick_mode() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.connections, 4);
        assert_eq!(o.requests, 8);
        assert_eq!(o.mode, Mode::Closed);
        let q = opts(&["--quick"]).unwrap();
        assert_eq!(q.connections, 2);
        assert_eq!(q.requests, 3);
        assert_eq!(q.cases, vec![CaseId::Case2]);
    }

    #[test]
    fn parses_cases_expect_and_mode() {
        let o = opts(&[
            "--case",
            "Case2,Case4",
            "--mode",
            "open",
            "--expect",
            "Case2=ref.json",
            "--shutdown",
        ])
        .unwrap();
        assert_eq!(o.cases, vec![CaseId::Case2, CaseId::Case4]);
        assert_eq!(o.mode, Mode::Open);
        assert_eq!(o.expect, vec![(CaseId::Case2, PathBuf::from("ref.json"))]);
        assert!(o.shutdown);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(opts(&["--mode", "sideways"]).is_err());
        assert!(opts(&["--case", "Case9"]).is_err());
        assert!(opts(&["--expect", "Case2"]).is_err());
        assert!(opts(&["--connections", "0"]).is_err());
        assert!(opts(&["--bogus"]).is_err());
    }

    #[test]
    fn case_schedule_is_deterministic_and_seed_dependent() {
        let a = opts(&["--seed", "1"]).unwrap();
        let b = opts(&["--seed", "1"]).unwrap();
        let c = opts(&["--seed", "2"]).unwrap();
        let schedule =
            |o: &Options| -> Vec<CaseId> { (0..6).map(|i| pick_case(o, 1, i)).collect() };
        assert_eq!(schedule(&a), schedule(&b));
        assert_ne!(schedule(&a), schedule(&c));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 50.0), 5.0);
        assert_eq!(percentile(&sorted, 95.0), 10.0);
        assert_eq!(percentile(&sorted, 99.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn hit_rate_handles_cold_caches() {
        assert_eq!(hit_rate(0.0, 0.0), 0.0);
        assert_eq!(hit_rate(3.0, 1.0), 75.0);
    }
}
